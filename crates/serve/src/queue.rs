//! Bounded queues and admission control — the backpressure layer.
//!
//! Every path work can enter the server goes through one of two gates:
//!
//! * [`Bounded`] — a closable MPMC queue with a hard capacity. Producers
//!   never block: a full queue is an immediate `Err`, which the dispatch
//!   layer turns into `503 Overloaded`. Consumers block with a timeout so
//!   drain flags are observed promptly.
//! * [`Admission`] — a concurrency limiter for work executed inline on
//!   connection threads (analytic cost queries). Up to `max_active`
//!   requests run at once; up to `max_waiting` more may wait, each bounded
//!   by its own deadline; everything beyond that is shed immediately.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::proto::ProtoError;

struct BoundedInner<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded, closable multi-producer multi-consumer queue.
pub struct Bounded<T> {
    inner: Mutex<BoundedInner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for Bounded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bounded")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> Bounded<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(BoundedInner {
                queue: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    // Queue state stays structurally valid at every await-free point, so a
    // poisoned mutex (panicking consumer) is safe to see through.
    fn lock(&self) -> std::sync::MutexGuard<'_, BoundedInner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues without blocking. A full or closed queue returns the item
    /// back so the caller can shed it.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.lock();
        if inner.closed || inner.queue.len() >= self.capacity {
            return Err(item);
        }
        inner.queue.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues, waiting up to `timeout`. Returns `None` on timeout or when
    /// the queue is closed *and* empty (items enqueued before the close are
    /// still drained).
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.queue.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timed_out) = self
                .available
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Closes the queue: future pushes fail, consumers drain what is left
    /// and then see `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Whether [`Bounded::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Debug)]
struct AdmissionState {
    active: usize,
    waiting: usize,
}

/// Concurrency limiter with a bounded waiting room.
#[derive(Debug)]
pub struct Admission {
    state: Mutex<AdmissionState>,
    freed: Condvar,
    max_active: usize,
    max_waiting: usize,
}

/// An acquired admission slot; releases on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    admission: &'a Admission,
}

impl Admission {
    /// At most `max_active` concurrent permits, with at most `max_waiting`
    /// callers queued behind them.
    pub fn new(max_active: usize, max_waiting: usize) -> Self {
        Self {
            state: Mutex::new(AdmissionState {
                active: 0,
                waiting: 0,
            }),
            freed: Condvar::new(),
            max_active: max_active.max(1),
            max_waiting,
        }
    }

    // The two counters are restored on every exit path below, so a poisoned
    // lock (panicking handler thread) leaves consistent state.
    fn lock(&self) -> std::sync::MutexGuard<'_, AdmissionState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires a slot, waiting at most `deadline`.
    ///
    /// # Errors
    ///
    /// `503 Overloaded` when the waiting room is full or the deadline
    /// passes first.
    pub fn acquire(&self, deadline: Duration) -> Result<Permit<'_>, ProtoError> {
        let until = Instant::now() + deadline;
        let mut state = self.lock();
        if state.active < self.max_active {
            state.active += 1;
            return Ok(Permit { admission: self });
        }
        if state.waiting >= self.max_waiting {
            dance_telemetry::counter!("serve.shed.admission_full");
            return Err(ProtoError::overloaded("admission queue full"));
        }
        state.waiting += 1;
        loop {
            let now = Instant::now();
            if now >= until {
                state.waiting -= 1;
                dance_telemetry::counter!("serve.shed.deadline");
                return Err(ProtoError::overloaded("deadline exceeded while queued"));
            }
            let (guard, _timed_out) = self
                .freed
                .wait_timeout(state, until - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            if state.active < self.max_active {
                state.waiting -= 1;
                state.active += 1;
                return Ok(Permit { admission: self });
            }
        }
    }

    /// Permits currently held.
    pub fn active(&self) -> usize {
        self.lock().active
    }

    /// Callers currently queued for a permit.
    pub fn waiting(&self) -> usize {
        self.lock().waiting
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.admission.lock();
        state.active -= 1;
        drop(state);
        self.admission.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = Bounded::new(4);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = Bounded::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Bounded::new(4);
        q.try_push(7).map_err(|_| ()).unwrap_or(());
        q.close();
        assert_eq!(q.try_push(8), Err(8));
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(7));
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().expect("consumer thread must not panic"), None);
    }

    #[test]
    fn admission_limits_and_sheds() {
        let a = Admission::new(1, 0);
        let p = a.acquire(Duration::from_millis(5)).expect("first acquire");
        // No waiting room: second caller is shed immediately.
        let err = a
            .acquire(Duration::from_millis(5))
            .expect_err("must be shed");
        assert_eq!(err.code, 503);
        drop(p);
        let _p2 = a.acquire(Duration::from_millis(5)).expect("after release");
    }

    #[test]
    fn admission_waiter_times_out_with_503() {
        let a = Admission::new(1, 4);
        let _p = a.acquire(Duration::from_millis(5)).expect("first acquire");
        let t0 = Instant::now();
        let err = a
            .acquire(Duration::from_millis(30))
            .expect_err("deadline must fire");
        assert_eq!(err.code, 503);
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert_eq!(a.waiting(), 0, "waiter count must be restored");
    }

    #[test]
    fn admission_hands_over_to_waiter() {
        let a = Arc::new(Admission::new(1, 4));
        let p = a.acquire(Duration::from_millis(5)).expect("holder");
        let a2 = a.clone();
        let h = std::thread::spawn(move || a2.acquire(Duration::from_secs(5)).map(|_| ()));
        std::thread::sleep(Duration::from_millis(20));
        drop(p);
        h.join()
            .expect("waiter thread must not panic")
            .expect("waiter must get the freed slot");
        assert_eq!(a.active(), 0);
    }
}
