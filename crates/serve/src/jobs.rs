//! Asynchronous guarded search jobs.
//!
//! `search/submit` enqueues a job spec into a bounded queue; a fixed pool
//! of worker threads pops specs and runs `dance_search_guarded` on the
//! tiny benchmark (the serving tier exercises the full search stack, not a
//! paper-scale run). Job state lives in a shared table polled via
//! `search/status`, and finished outcomes are rendered once and replayed
//! verbatim by `search/result`. Worker panics mark the job failed instead
//! of taking the server down, and each job's guard report is absorbed into
//! a server-lifetime aggregate surfaced by `health`.
//!
//! # Lock discipline
//!
//! The serve tier follows the workspace-wide **single-lock rule** that
//! `dance-analyze --concurrency` enforces: at most one mutex guard is live
//! at a time, and no guard is held across queue operations, pool dispatch,
//! or I/O. Concretely, `states` and `guard_total` here, and
//! `Bounded::inner` / the admission mutex in [`crate::queue`], are always
//! taken as statement temporaries or dropped before the next blocking step
//! — so there is no lock *order* to get wrong (the lock-order graph for
//! this crate has no edges). The state table is a `BTreeMap`, not a
//! `HashMap`: `counts()` folds over it for `health`, and iteration order
//! must not depend on hasher seeds (`determinism` lint).

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use dance::prelude::*;
use dance_telemetry::json::{push_escaped, push_num};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::proto::ProtoError;
use crate::queue::Bounded;

/// Lifecycle of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running the search.
    Running,
    /// Finished; the rendered result payload is replayed by `search/result`.
    Done(String),
    /// The search panicked; the message is returned as a `500`.
    Failed(String),
}

/// One accepted submission, carrying its already-validated search config.
#[derive(Debug, Clone)]
struct JobSpec {
    id: String,
    cfg: SearchConfig,
    flops_penalty: bool,
    checkpoint: bool,
}

#[derive(Debug)]
struct JobsShared {
    states: Mutex<BTreeMap<String, JobState>>,
    queue: Bounded<JobSpec>,
    guard_total: Mutex<GuardReport>,
    ckpt_root: PathBuf,
}

impl JobsShared {
    // Job-state maps are plain value stores; a panicking worker cannot
    // leave them structurally broken, so poisoning is survivable.
    fn states(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, JobState>> {
        self.states.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The job table + worker pool.
#[derive(Debug)]
pub struct JobTable {
    shared: Arc<JobsShared>,
    next_id: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Per-state job counts, for `health`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCounts {
    /// Jobs waiting for a worker.
    pub queued: usize,
    /// Jobs currently running.
    pub running: usize,
    /// Jobs finished successfully.
    pub done: usize,
    /// Jobs that panicked.
    pub failed: usize,
}

impl JobTable {
    /// Spawns `workers` search workers over a queue of `capacity` pending
    /// jobs. Checkpointing jobs write under `ckpt_root/<job-id>/`.
    pub fn start(workers: usize, capacity: usize, ckpt_root: PathBuf) -> Self {
        let shared = Arc::new(JobsShared {
            states: Mutex::new(BTreeMap::new()),
            queue: Bounded::new(capacity),
            guard_total: Mutex::new(GuardReport::default()),
            ckpt_root,
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                dance_backend::spawn_service(&format!("serve-search-{i}"), move || {
                    worker_loop(&shared)
                })
                .expect("spawn search worker thread")
            })
            .collect();
        Self {
            shared,
            next_id: AtomicU64::new(0),
            workers: Mutex::new(handles),
        }
    }

    /// Accepts a submission, returning the new job id.
    ///
    /// # Errors
    ///
    /// `400` when the submitted knobs fail [`SearchConfig::builder`]
    /// validation; `503` when the pending-job queue is full or the table is
    /// draining.
    pub fn submit(
        &self,
        epochs: usize,
        seed: u64,
        lambda2: f32,
        flops_penalty: bool,
        checkpoint: bool,
    ) -> Result<String, ProtoError> {
        // Validate the whole search configuration up front so a bad request
        // fails at submission time, not inside a worker.
        let cfg = SearchConfig::builder()
            .epochs(epochs.clamp(1, 64))
            .batch_size(32)
            .lambda2(LambdaWarmup::ramp(lambda2, 1))
            .seed(seed)
            .build()
            .map_err(|e| ProtoError::bad_request(e.to_string()))?;
        let id = format!("job-{}", self.next_id.fetch_add(1, Ordering::Relaxed));
        self.shared.states().insert(id.clone(), JobState::Queued);
        let spec = JobSpec {
            id: id.clone(),
            cfg,
            flops_penalty,
            checkpoint,
        };
        if self.shared.queue.try_push(spec).is_err() {
            self.shared.states().remove(&id);
            dance_telemetry::counter!("serve.shed.job_queue");
            return Err(ProtoError::overloaded("job queue full"));
        }
        dance_telemetry::counter!("serve.jobs.submitted");
        Ok(id)
    }

    /// The state of a job, if known.
    pub fn state(&self, id: &str) -> Option<JobState> {
        self.shared.states().get(id).cloned()
    }

    /// The rendered result payload of a finished job.
    ///
    /// # Errors
    ///
    /// `404` for an unknown id, `400` for a job that has not finished,
    /// `500` for a failed job.
    pub fn result(&self, id: &str) -> Result<String, ProtoError> {
        match self.state(id) {
            None => Err(ProtoError::not_found(format!("unknown job {id:?}"))),
            Some(JobState::Queued | JobState::Running) => Err(ProtoError::bad_request(format!(
                "job {id:?} has not finished; poll search/status"
            ))),
            Some(JobState::Done(payload)) => Ok(payload),
            Some(JobState::Failed(msg)) => {
                Err(ProtoError::internal(format!("job {id:?} failed: {msg}")))
            }
        }
    }

    /// Per-state counts.
    pub fn counts(&self) -> JobCounts {
        let mut counts = JobCounts::default();
        for state in self.shared.states().values() {
            match state {
                JobState::Queued => counts.queued += 1,
                JobState::Running => counts.running += 1,
                JobState::Done(_) => counts.done += 1,
                JobState::Failed(_) => counts.failed += 1,
            }
        }
        counts
    }

    /// Pending queue depth.
    pub fn depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Aggregate guard report over every finished job.
    pub fn guard_total(&self) -> GuardReport {
        self.shared
            .guard_total
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Stops accepting jobs, finishes everything queued or running, and
    /// joins the workers.
    pub fn shutdown(&self) {
        self.shared.queue.close();
        let handles =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for h in handles {
            if h.join().is_err() {
                eprintln!("warning: search worker thread panicked");
            }
        }
    }
}

fn worker_loop(shared: &JobsShared) {
    loop {
        let Some(spec) = shared.queue.pop_timeout(Duration::from_millis(100)) else {
            if shared.queue.is_closed() && shared.queue.is_empty() {
                return;
            }
            continue;
        };
        shared.states().insert(spec.id.clone(), JobState::Running);
        dance_telemetry::counter!("serve.jobs.started");
        let outcome = {
            let _span = dance_telemetry::span!("serve.search_job");
            catch_unwind(AssertUnwindSafe(|| run_search(shared, &spec)))
        };
        let state = match outcome {
            Ok((payload, guard)) => {
                shared
                    .guard_total
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .absorb(&guard);
                dance_telemetry::counter!("serve.jobs.done");
                JobState::Done(payload)
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "search panicked".to_string());
                dance_telemetry::counter!("serve.jobs.failed");
                JobState::Failed(msg)
            }
        };
        shared.states().insert(spec.id.clone(), state);
    }
}

fn run_search(shared: &JobsShared, spec: &JobSpec) -> (String, GuardReport) {
    let cfg = spec.cfg;
    let bench = Benchmark::tiny(cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let net = Supernet::new(bench.supernet, &mut rng);
    let arch = ArchParams::new(bench.template.num_slots(), &mut rng);
    let penalty = if spec.flops_penalty {
        Penalty::Flops(&bench.template)
    } else {
        Penalty::None
    };
    let guard_cfg = GuardConfig {
        checkpoint: spec.checkpoint.then(|| {
            dance::guard::checkpoint::CheckpointConfig::every_epoch(shared.ckpt_root.join(&spec.id))
        }),
        ..GuardConfig::default()
    };
    let out = dance_search_guarded(&net, &arch, &bench.data, &penalty, &cfg, &guard_cfg);
    (render_outcome(spec, &out), out.guard)
}

fn render_outcome(spec: &JobSpec, out: &SearchOutcome) -> String {
    let mut payload = String::with_capacity(128);
    payload.push_str("\"job\":");
    push_escaped(&mut payload, &spec.id);
    payload.push_str(",\"choices\":[");
    for (i, c) in out.choices.iter().enumerate() {
        if i > 0 {
            payload.push(',');
        }
        push_num(&mut payload, c.index() as f64);
    }
    payload.push_str("],\"digest\":");
    push_escaped(&mut payload, &format!("{:016x}", out.digest()));
    payload.push_str(",\"epochs\":");
    push_num(&mut payload, out.history.len() as f64);
    if let Some(last) = out.history.last() {
        payload.push_str(",\"final_entropy\":");
        push_num(&mut payload, f64::from(last.arch_entropy));
    }
    payload.push_str(",\"guard\":{\"watchdog_trips\":");
    push_num(&mut payload, f64::from(out.guard.watchdog_trips));
    payload.push_str(",\"rollbacks\":");
    push_num(&mut payload, f64::from(out.guard.rollbacks));
    payload.push_str(",\"checkpoints_written\":");
    push_num(&mut payload, f64::from(out.guard.checkpoints_written));
    payload.push('}');
    payload
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dance_serve_jobs_{tag}_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir
    }

    fn wait_done(table: &JobTable, id: &str) -> JobState {
        for _ in 0..600 {
            match table.state(id) {
                Some(JobState::Done(_) | JobState::Failed(_)) => {
                    return table.state(id).expect("state exists");
                }
                _ => std::thread::sleep(Duration::from_millis(100)),
            }
        }
        panic!("job {id} did not finish in time");
    }

    #[test]
    fn submitted_job_runs_to_done_with_result() {
        let table = JobTable::start(1, 4, tmp_dir("done"));
        let id = table.submit(1, 0, 0.3, true, false).expect("submit");
        let state = wait_done(&table, &id);
        assert!(matches!(state, JobState::Done(_)), "{state:?}");
        let payload = table.result(&id).expect("result available");
        assert!(payload.contains("\"choices\":["), "{payload}");
        assert!(payload.contains("\"digest\":"), "{payload}");
        assert_eq!(table.counts().done, 1);
        table.shutdown();
    }

    #[test]
    fn unknown_and_unfinished_jobs_report_correct_codes() {
        let table = JobTable::start(1, 4, tmp_dir("codes"));
        assert_eq!(table.result("job-999").expect_err("unknown").code, 404);
        let id = table.submit(1, 1, 0.3, false, false).expect("submit");
        // Freshly queued or already running — either way, not finished.
        if let Err(e) = table.result(&id) {
            assert_eq!(e.code, 400);
        }
        wait_done(&table, &id);
        table.shutdown();
    }

    #[test]
    fn full_job_queue_sheds() {
        // One worker, capacity 1: the first job occupies the worker, the
        // second fills the queue, the third must shed.
        let table = JobTable::start(1, 1, tmp_dir("shed"));
        let mut shed = false;
        for _ in 0..3 {
            if let Err(e) = table.submit(2, 2, 0.3, true, false) {
                assert_eq!(e.code, 503);
                shed = true;
            }
        }
        assert!(shed, "third submission must be shed");
        table.shutdown();
    }
}
