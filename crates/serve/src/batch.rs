//! Micro-batched learned-cost inference.
//!
//! `cost/predict` requests from all connections funnel into one bounded
//! queue; a single collector thread pops the first pending request, gathers
//! whatever else arrives inside a short window (up to `max_batch`), and
//! runs one forward pass over the combined `[batch, arch_width]` matrix —
//! amortizing `Evaluator::predict_metrics` + `HwGenNet::predict` across
//! concurrent clients.
//!
//! Responses must stay **bit-identical regardless of batch composition**
//! (the response cache replays them): the evaluator is frozen (batch norms
//! use running statistics), the head read-out uses deterministic softmax
//! sampling, and every per-row computation depends only on that row.

use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dance::autograd::tensor::Tensor;
use dance::autograd::var::Var;
use dance_accel::space::HardwareSpace;
use dance_evaluator::evaluator::Evaluator;
use dance_telemetry::json::push_num;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::proto::ProtoError;
use crate::queue::Bounded;

/// One queued prediction: the encoding row and the channel the rendered
/// response payload is delivered on.
#[derive(Debug)]
pub struct PredictJob {
    /// Architecture encoding (validated to `arch_width` before enqueue).
    pub arch: Vec<f32>,
    /// Delivery channel for the rendered payload fragment.
    pub tx: mpsc::Sender<Result<String, ProtoError>>,
}

/// Collector configuration.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Largest micro-batch assembled per forward pass.
    pub max_batch: usize,
    /// How long to linger for co-batchable requests after the first.
    pub window: Duration,
    /// Queue capacity; pushes beyond it are shed with `503`.
    pub queue_capacity: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            window: Duration::from_millis(1),
            queue_capacity: 1024,
        }
    }
}

/// Handle to the collector thread; shared by all connection threads.
#[derive(Debug)]
pub struct PredictBatcher {
    queue: Arc<Bounded<PredictJob>>,
    arch_width: usize,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl PredictBatcher {
    /// Starts the collector thread. The evaluator is built *inside* the
    /// thread by `make` — the autograd graph is `Rc`-based and cannot
    /// cross threads — and must accept `arch_width`-wide encodings.
    pub fn start(
        arch_width: usize,
        make: impl FnOnce() -> Evaluator + Send + 'static,
        cfg: BatchConfig,
    ) -> Self {
        let queue = Arc::new(Bounded::new(cfg.queue_capacity));
        let worker_queue = queue.clone();
        let handle = dance_backend::spawn_service("serve-predict", move || {
            let evaluator = make();
            assert_eq!(
                evaluator.arch_width(),
                arch_width,
                "collector evaluator width"
            );
            evaluator.freeze();
            collector_loop(&evaluator, &worker_queue, cfg);
        })
        .expect("spawn predict collector thread");
        Self {
            queue,
            arch_width,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Encoding width requests must match (`NUM_SLOTS × NUM_CHOICES`).
    pub fn arch_width(&self) -> usize {
        self.arch_width
    }

    /// Current queue depth (for `health` and gauges).
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues a prediction and returns the channel its payload will
    /// arrive on.
    ///
    /// # Errors
    ///
    /// `400` on a wrong-width encoding; `503` when the queue is full or the
    /// server is draining.
    pub fn submit(
        &self,
        arch: Vec<f32>,
    ) -> Result<mpsc::Receiver<Result<String, ProtoError>>, ProtoError> {
        if arch.len() != self.arch_width {
            return Err(ProtoError::bad_request(format!(
                "`arch` must have {} entries, got {}",
                self.arch_width,
                arch.len()
            )));
        }
        let (tx, rx) = mpsc::channel();
        self.queue.try_push(PredictJob { arch, tx }).map_err(|_| {
            dance_telemetry::counter!("serve.shed.predict_queue");
            ProtoError::overloaded("predict queue full")
        })?;
        Ok(rx)
    }

    /// Drains the queue and stops the collector. Queued jobs are still
    /// answered; only then does the thread exit.
    pub fn shutdown(&self) {
        self.queue.close();
        let handle = self
            .handle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(h) = handle {
            if h.join().is_err() {
                eprintln!("warning: predict collector thread panicked");
            }
        }
    }
}

fn collector_loop(evaluator: &Evaluator, queue: &Bounded<PredictJob>, cfg: BatchConfig) {
    let space = HardwareSpace::new();
    loop {
        let Some(first) = queue.pop_timeout(Duration::from_millis(100)) else {
            if queue.is_closed() && queue.is_empty() {
                return;
            }
            continue;
        };
        let mut jobs = vec![first];
        let window_end = Instant::now() + cfg.window;
        while jobs.len() < cfg.max_batch {
            let now = Instant::now();
            if now >= window_end {
                break;
            }
            match queue.pop_timeout(window_end - now) {
                Some(job) => jobs.push(job),
                None => break,
            }
        }
        run_batch(evaluator, &space, &jobs);
    }
}

/// One forward pass over the assembled micro-batch; every job receives its
/// row's rendered payload.
fn run_batch(evaluator: &Evaluator, space: &HardwareSpace, jobs: &[PredictJob]) {
    let _span = dance_telemetry::hot_span!("serve.predict_batch");
    dance_telemetry::gauge!("serve.predict.batch_size", jobs.len() as f64);
    let width = evaluator.arch_width();
    let mut rows = Vec::with_capacity(jobs.len() * width);
    for job in jobs {
        rows.extend_from_slice(&job.arch);
    }
    let x = Var::constant(Tensor::from_vec(rows, &[jobs.len(), width]));
    // Softmax head sampling consumes no randomness; the seed only satisfies
    // the signature, keeping row results independent of batch composition.
    let mut rng = StdRng::seed_from_u64(0);
    let metrics = evaluator.predict_metrics(&x, &mut rng);
    let metrics = metrics.value();
    let configs = evaluator.predict_configs(&x, space);
    for (i, job) in jobs.iter().enumerate() {
        let mut payload = String::with_capacity(64);
        payload.push_str("\"metrics\":[");
        for m in 0..3 {
            if m > 0 {
                payload.push(',');
            }
            push_num(&mut payload, f64::from(metrics.data()[i * 3 + m]));
        }
        payload.push_str("],\"cfg\":");
        push_num(&mut payload, space.index_of(&configs[i]) as f64);
        // A send error only means the client hung up before its answer.
        let _ = job.tx.send(Ok(payload));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dance_evaluator::cost_net::CostNet;
    use dance_evaluator::hwgen_net::{HeadSampling, HwGenNet};

    fn tiny_evaluator() -> Evaluator {
        let mut rng = StdRng::seed_from_u64(7);
        let hwgen = HwGenNet::new(63, 16, &mut rng);
        let cost = CostNet::new(63 + dance_accel::space::ENCODED_WIDTH, 16, &mut rng);
        Evaluator::with_feature_forwarding(hwgen, cost, 63, HeadSampling::Softmax { tau: 1.0 })
    }

    #[test]
    fn single_prediction_round_trips() {
        let b = PredictBatcher::start(63, tiny_evaluator, BatchConfig::default());
        let rx = b.submit(vec![0.1; 63]).expect("submit");
        let payload = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("collector answers")
            .expect("prediction succeeds");
        assert!(payload.starts_with("\"metrics\":["), "{payload}");
        assert!(payload.contains("\"cfg\":"), "{payload}");
        b.shutdown();
    }

    #[test]
    fn wrong_width_is_rejected_before_enqueue() {
        let b = PredictBatcher::start(63, tiny_evaluator, BatchConfig::default());
        let err = b.submit(vec![0.0; 5]).expect_err("must reject");
        assert_eq!(err.code, 400);
        b.shutdown();
    }

    #[test]
    fn payload_is_independent_of_batch_composition() {
        let probe: Vec<f32> = (0..63).map(|i| (i as f32) / 63.0).collect();
        // Batch of one.
        let b = PredictBatcher::start(
            63,
            tiny_evaluator,
            BatchConfig {
                window: Duration::from_millis(0),
                ..BatchConfig::default()
            },
        );
        let solo = b
            .submit(probe.clone())
            .expect("submit")
            .recv_timeout(Duration::from_secs(5))
            .expect("answer")
            .expect("ok");
        b.shutdown();
        // Same probe inside a larger, different batch.
        let b = PredictBatcher::start(
            63,
            tiny_evaluator,
            BatchConfig {
                window: Duration::from_millis(50),
                ..BatchConfig::default()
            },
        );
        let mut receivers = Vec::new();
        for k in 0..8 {
            let row = if k == 3 {
                probe.clone()
            } else {
                vec![0.31 + 0.07 * k as f32; 63]
            };
            receivers.push(b.submit(row).expect("submit"));
        }
        let batched = receivers[3]
            .recv_timeout(Duration::from_secs(5))
            .expect("answer")
            .expect("ok");
        b.shutdown();
        assert_eq!(solo, batched, "payload must not depend on batch peers");
    }

    #[test]
    fn full_queue_sheds_with_503() {
        // Tiny queue + an unstarted... the collector drains fast, so use a
        // zero-capacity-equivalent: capacity 1 and flood synchronously.
        let b = PredictBatcher::start(
            63,
            tiny_evaluator,
            BatchConfig {
                queue_capacity: 1,
                ..BatchConfig::default()
            },
        );
        let mut shed = 0;
        for _ in 0..64 {
            if let Err(e) = b.submit(vec![0.2; 63]) {
                assert_eq!(e.code, 503);
                shed += 1;
            }
        }
        b.shutdown();
        assert!(shed > 0, "capacity-1 queue must shed under a flood");
    }
}
