#![warn(missing_docs)]

//! # dance-serve
//!
//! A concurrent cost-query & search-job service over the DANCE stack —
//! the serving tier the ROADMAP's "heavy traffic" north star asks for.
//! Zero external dependencies: a thread-per-connection TCP server speaking
//! newline-delimited JSON (protocol schema v1, see [`proto`]).
//!
//! Three endpoint families:
//!
//! * **`cost/analytic`** — exact per-layer dataflow cost of a discrete
//!   (architecture, accelerator-config) pair through `dance-cost`,
//!   executed inline under [`queue::Admission`] control;
//! * **`cost/predict`** — learned-evaluator metrics + hardware-generation
//!   read-out, with concurrent requests coalesced into micro-batches by
//!   [`batch::PredictBatcher`] to amortize forward passes;
//! * **`search/submit|status|result`** — asynchronous guarded search jobs
//!   ([`jobs::JobTable`]) running `dance_search_guarded` with optional
//!   `dance-guard` checkpointing;
//! * **`campaign/submit|status|stream|cancel`** — co-search campaigns
//!   ([`campaign::CampaignTable`]) orchestrated by `dance-campaign`, with
//!   `campaign/stream` holding the connection open and writing NDJSON
//!   `frontier_update` events (replayable from any offset via `from`);
//! * **`fleet/submit|status|drain`** — lease-supervised search jobs
//!   ([`fleet::FleetTable`]) backed by `dance-fleet`'s durable job ledger.
//!   Submission is idempotent (the job id is the spec digest), so client
//!   retries after transport failures cannot duplicate work; per-worker
//!   health and lease-recovery counters surface under `health`.
//!
//! Cross-cutting: a sharded LRU response cache ([`cache::ResponseCache`])
//! keyed on quantized payloads whose hits replay **bit-identical** bytes,
//! bounded queues everywhere with `503 Overloaded` shedding instead of
//! unbounded growth, per-request queue-wait deadlines, graceful drain via
//! `admin/shutdown`, a `health` endpoint surfacing guard/queue/cache
//! state, and full `dance-telemetry` instrumentation (per-endpoint spans,
//! queue-depth gauges, cache hit/miss counters).
//!
//! ## Quick start
//!
//! ```no_run
//! use dance_serve::{Server, ServeConfig};
//! let server = Server::bind(&ServeConfig::default()).expect("bind");
//! println!("listening on {}", server.local_addr());
//! server.run().expect("serve"); // returns after a graceful drain
//! ```
//!
//! The `dance_serve` binary wraps exactly this; `serve_load` is the
//! closed-loop load generator that feeds `BENCH_serve.json`.

pub mod batch;
pub mod cache;
pub mod campaign;
pub mod client;
pub mod fleet;
pub mod jobs;
pub mod proto;
pub mod queue;
pub mod server;

pub use client::Client;
pub use server::{ServeConfig, Server};
