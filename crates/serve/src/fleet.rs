//! Fleet endpoints' backing state: a [`dance_fleet`] in-process supervisor
//! mounted behind `fleet/submit`, `fleet/status` and `fleet/drain`.
//!
//! Submission is idempotent by construction — the job id is the digest of
//! the spec, so a client retrying a `fleet/submit` after a transport
//! failure lands on the same job instead of spawning a duplicate search.
//! That is what makes `fleet/submit` safe under the client's retry policy
//! while `campaign/submit` is not.

use std::path::Path;

use dance_fleet::prelude::{Fleet, FleetOpts, JobSpec};
use dance_telemetry::json::push_escaped;

/// The server's handle on its fleet supervisor.
pub struct FleetTable {
    fleet: Fleet,
}

impl std::fmt::Debug for FleetTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetTable").finish_non_exhaustive()
    }
}

impl FleetTable {
    /// Starts an in-process fleet rooted at `dir` (ledger + checkpoints).
    ///
    /// # Errors
    ///
    /// Returns the supervisor's error string when the ledger directory
    /// cannot be created or opened.
    pub fn start(dir: &Path, workers: usize, lease_ttl_ms: u64) -> Result<Self, String> {
        let opts = FleetOpts::new(dir.to_path_buf())
            .with_workers(workers.max(1))
            .with_lease_ttl_ms(lease_ttl_ms);
        let fleet = Fleet::start(opts).map_err(|e| format!("fleet start: {e}"))?;
        Ok(Self { fleet })
    }

    /// Submits a job spec; returns `(job_id, deduped)` rendered as a JSON
    /// fragment, or an error string for invalid specs / draining fleets.
    pub fn submit(
        &self,
        epochs: usize,
        batch: usize,
        seed: u64,
        lambda2: f32,
    ) -> Result<String, String> {
        let spec = JobSpec::new(epochs as u64, batch as u64, seed, lambda2);
        let (job, deduped) = self.fleet.submit(spec)?;
        let mut out = String::new();
        out.push_str("\"job\":");
        push_escaped(&mut out, &job);
        out.push_str(",\"deduped\":");
        out.push_str(if deduped { "true" } else { "false" });
        Ok(out)
    }

    /// One job's view as a JSON fragment, or `None` for unknown ids.
    pub fn status(&self, job: &str) -> Option<String> {
        let view = self.fleet.status(job)?;
        let mut out = String::new();
        out.push_str("\"job\":");
        push_escaped(&mut out, &view.id);
        out.push_str(",\"state\":");
        push_escaped(&mut out, &view.state);
        out.push_str(&format!(",\"attempt\":{}", view.attempt));
        if let Some(worker) = &view.worker {
            out.push_str(",\"worker\":");
            push_escaped(&mut out, worker);
        }
        if let Some(digest) = view.digest {
            out.push_str(",\"digest\":");
            push_escaped(&mut out, &format!("{digest:016x}"));
        }
        if let Some(epochs) = view.epochs {
            out.push_str(&format!(",\"ran\":{epochs}"));
        }
        if let Some(error) = &view.error {
            out.push_str(",\"error\":");
            push_escaped(&mut out, error);
        }
        Some(out)
    }

    /// Stops accepting new jobs; in-flight jobs run to completion.
    pub fn drain(&self) -> String {
        self.fleet.drain();
        let mut out = String::from("\"draining\":true,");
        out.push_str(&self.health_fragment());
        out
    }

    /// The `"fleet":{...}` health fragment: job counts, lease-recovery
    /// counters, and per-worker state.
    #[must_use]
    pub fn health_fragment(&self) -> String {
        let c = self.fleet.counts();
        let mut out = String::new();
        out.push_str(&format!(
            "\"jobs\":{{\"pending\":{},\"leased\":{},\"done\":{},\"failed\":{}}}",
            c.pending, c.leased, c.done, c.failed
        ));
        out.push_str(&format!(
            ",\"reclaims\":{},\"fenced\":{},\"recoveries\":{}",
            c.reclaims,
            c.fenced,
            c.recoveries_ms.len()
        ));
        out.push_str(",\"workers\":[");
        let mut first = true;
        for (name, health) in &c.workers {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            push_escaped(&mut out, name);
            out.push_str(",\"state\":");
            push_escaped(&mut out, &health.state);
            if let Some(job) = &health.job {
                out.push_str(",\"job\":");
                push_escaped(&mut out, job);
            }
            out.push_str(&format!(",\"done\":{}", health.done));
            out.push('}');
        }
        out.push(']');
        out
    }

    /// Shuts the supervisor down, joining its worker threads.
    pub fn shutdown(self) {
        self.fleet.shutdown();
    }
}
