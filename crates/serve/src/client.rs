//! Blocking protocol client: timeouts, retry/backoff, stream re-attach.
//!
//! [`LineReader`] is a byte-buffered newline framer that survives read
//! timeouts: a `WouldBlock`/`TimedOut` error surfaces to the caller while
//! partially received bytes stay buffered, so the server's connection loops
//! can poll their drain flag between reads without tearing frames (and
//! without `BufReader::read_line`'s partial-UTF-8 hazards).
//!
//! [`Client`] is the blocking counterpart used by `serve_load`, the
//! integration tests and scripts: send one [`Request`], read one response
//! line. Every socket operation is bounded — [`ClientConfig`] carries
//! connect, read *and* write timeouts (`TcpStream::connect` alone would
//! block on the OS default, minutes on some stacks) — and the resolved
//! addresses are kept so [`Client::reconnect`] can rebuild the connection
//! after a failure.
//!
//! [`RetryPolicy`] is the disciplined retry path: jittered exponential
//! backoff under a total budget, with safe-to-retry classification —
//! transport failures and `503` (shed work, never started) retry;
//! `400`/`404`/`500` never do. Callers must only hand it idempotent
//! requests (cost queries, digest-keyed fleet submissions); blind retries
//! of non-idempotent ops like `campaign/submit` can duplicate work.
//!
//! [`StreamFollower`] rides a campaign event stream and, on EOF or timeout
//! mid-stream, reconnects and replays from the last seen event offset —
//! the server replays its event log from any `from`, so no event is lost
//! or duplicated.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use dance_telemetry::json::{self, Json};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::proto::{render_request, ReqBody, Request};

/// Byte-buffered newline framer over any reader.
#[derive(Debug)]
pub struct LineReader<R> {
    reader: R,
    buf: Vec<u8>,
}

impl<R: Read> LineReader<R> {
    /// Wraps a reader.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            buf: Vec::with_capacity(4096),
        }
    }

    /// Reads one `\n`-terminated line (terminator stripped, lossy UTF-8).
    ///
    /// Returns `Ok(None)` on a clean EOF. Unterminated trailing bytes at
    /// EOF are returned as a final line.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; `WouldBlock`/`TimedOut` leave buffered
    /// bytes intact so the caller can simply retry.
    pub fn read_line(&mut self) -> io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.buf.iter().position(|b| *b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            let mut chunk = [0u8; 4096];
            match self.reader.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.is_empty() {
                        return Ok(None);
                    }
                    let line = String::from_utf8_lossy(&self.buf).into_owned();
                    self.buf.clear();
                    return Ok(Some(line));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
    }
}

/// Socket timeout knobs for [`Client::connect_with`]. `None` means block
/// indefinitely — defaults bound everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Per-address TCP connect budget (default 5 s).
    pub connect_timeout: Option<Duration>,
    /// Per-read budget (default 10 s).
    pub read_timeout: Option<Duration>,
    /// Per-write budget (default 10 s).
    pub write_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
        }
    }
}

impl ClientConfig {
    /// Uniform knobs from CLI-style millisecond values (`0` → unbounded).
    #[must_use]
    pub fn from_ms(connect_ms: u64, io_ms: u64) -> Self {
        let opt = |ms: u64| (ms > 0).then(|| Duration::from_millis(ms));
        Self {
            connect_timeout: opt(connect_ms),
            read_timeout: opt(io_ms),
            write_timeout: opt(io_ms),
        }
    }
}

/// Whether a transport error is safe to retry: the failure classes where
/// the request either never reached the server or the connection died
/// without a response — so re-sending an idempotent request cannot
/// double-apply it.
#[must_use]
pub fn retryable_io(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::NotConnected
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::UnexpectedEof
    )
}

/// Jittered exponential backoff under a total retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (default 4).
    pub attempts: u32,
    /// First backoff delay (default 50 ms); doubles per retry.
    pub base: Duration,
    /// Per-delay cap (default 2 s).
    pub cap: Duration,
    /// Total sleep budget across all retries (default 10 s).
    pub budget: Duration,
    /// Jitter RNG seed — deterministic per client, decorrelated across a
    /// fleet of clients seeded differently.
    pub seed: u64,
    /// Also retry `503` responses (shed work, never started). Leave off
    /// when the caller accounts sheds itself, as `serve_load` does.
    pub retry_on_503: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            budget: Duration::from_secs(10),
            seed: 0,
            retry_on_503: true,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `retry` (0-based): `base · 2^retry`,
    /// capped, scaled by a jitter factor in `[0.5, 1.5)` so a thundering
    /// herd of clients decorrelates.
    #[must_use]
    pub fn backoff(&self, retry: u32, rng: &mut StdRng) -> Duration {
        let exp = self
            .base
            .saturating_mul(2u32.saturating_pow(retry))
            .min(self.cap);
        let jitter: f64 = 0.5 + rng.gen_range(0.0f64..1.0);
        Duration::from_secs_f64(exp.as_secs_f64() * jitter)
    }
}

/// A blocking protocol-v1 client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: LineReader<TcpStream>,
    addrs: Vec<SocketAddr>,
    cfg: ClientConfig,
}

impl Client {
    /// Connects with default connect/write timeouts; `timeout` bounds each
    /// response read (`None` blocks). Prefer [`Client::connect_with`] for
    /// full control.
    ///
    /// # Errors
    ///
    /// Propagates connection/setup errors.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Option<Duration>) -> io::Result<Self> {
        Self::connect_with(
            addr,
            ClientConfig {
                read_timeout: timeout,
                ..ClientConfig::default()
            },
        )
    }

    /// Resolves `addr` and connects to the first address that answers
    /// within `cfg.connect_timeout`, then applies the read/write timeouts.
    ///
    /// # Errors
    ///
    /// The last per-address connect error, or `AddrNotAvailable` when
    /// nothing resolves.
    pub fn connect_with(addr: impl ToSocketAddrs, cfg: ClientConfig) -> io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = connect_any(&addrs, &cfg)?;
        let reader = LineReader::new(stream.try_clone()?);
        Ok(Self {
            stream,
            reader,
            addrs,
            cfg,
        })
    }

    /// Drops the current connection and dials the same addresses again
    /// with the same timeouts. Any partially received bytes are discarded
    /// — after a reconnect the protocol starts from a clean frame.
    ///
    /// # Errors
    ///
    /// Propagates connection/setup errors.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = connect_any(&self.addrs, &self.cfg)?;
        self.reader = LineReader::new(stream.try_clone()?);
        self.stream = stream;
        dance_telemetry::counter!("serve.client.reconnects");
        Ok(())
    }

    /// Sends one request line and reads one response line (raw bytes, no
    /// trailing newline).
    ///
    /// # Errors
    ///
    /// Transport errors, including `UnexpectedEof` if the server closed
    /// the connection before answering.
    pub fn call_raw(&mut self, req: &Request) -> io::Result<String> {
        let mut line = render_request(req);
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        self.reader
            .read_line()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection"))
    }

    /// Reads one more response line without sending anything — the client
    /// side of a streaming op (`campaign/stream`), where the server writes
    /// an OK header and then one NDJSON event per line until the stream's
    /// terminal event.
    ///
    /// # Errors
    ///
    /// Transport errors; a read timeout surfaces as `WouldBlock`/`TimedOut`
    /// with any partial line preserved for the next call.
    pub fn read_stream_line(&mut self) -> io::Result<Option<String>> {
        self.reader.read_line()
    }

    /// Sends one request and parses the response as JSON.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` when the response line is not
    /// valid JSON.
    pub fn call(&mut self, req: &Request) -> io::Result<Json> {
        let line = self.call_raw(req)?;
        json::parse(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// [`Client::call`] with retries: transport failures reconnect and
    /// re-send under `policy`'s jittered backoff and budget; `503`
    /// responses retry when the policy allows; every other response —
    /// including `400`/`404`/`500` errors — returns immediately.
    ///
    /// Only hand this idempotent requests; a retried non-idempotent op
    /// (e.g. `campaign/submit`) can duplicate work.
    ///
    /// # Errors
    ///
    /// The final transport error once attempts or budget run out.
    pub fn call_retry(&mut self, req: &Request, policy: &RetryPolicy) -> io::Result<Json> {
        let mut rng = StdRng::seed_from_u64(policy.seed);
        let mut spent = Duration::ZERO;
        let mut retry = 0u32;
        loop {
            let failure = match self.call(req) {
                Ok(resp) => {
                    let code = resp.get("code").and_then(Json::as_f64).map(|c| c as u16);
                    if policy.retry_on_503 && code == Some(503) {
                        None // shed before any work happened: safe to retry
                    } else {
                        return Ok(resp);
                    }
                }
                Err(e) if retryable_io(e.kind()) => Some(e),
                Err(e) => return Err(e),
            };
            let overloaded = || {
                io::Error::new(
                    io::ErrorKind::TimedOut,
                    "server overloaded (503) after all retries",
                )
            };
            if retry + 1 >= policy.attempts {
                return Err(failure.unwrap_or_else(overloaded));
            }
            let delay = policy.backoff(retry, &mut rng);
            if spent + delay > policy.budget {
                return Err(failure.unwrap_or_else(overloaded));
            }
            std::thread::sleep(delay);
            spent += delay;
            // A 503 came over a healthy connection — keep it. Transport
            // failures leave the stream in an unknown state, so dial
            // fresh. Best effort: if the server is still down the next
            // call fails fast with a retryable error and we land back
            // here.
            if failure.is_some() {
                let _unused = self.reconnect();
            }
            retry += 1;
            dance_telemetry::counter!("serve.client.retries");
        }
    }
}

fn connect_any(addrs: &[SocketAddr], cfg: &ClientConfig) -> io::Result<TcpStream> {
    let mut last_err: Option<io::Error> = None;
    for a in addrs {
        let attempt = match cfg.connect_timeout {
            Some(t) => TcpStream::connect_timeout(a, t),
            None => TcpStream::connect(a),
        };
        match attempt {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_read_timeout(cfg.read_timeout)?;
                stream.set_write_timeout(cfg.write_timeout)?;
                return Ok(stream);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::AddrNotAvailable, "no addresses resolved")
    }))
}

/// Follows a campaign event stream with transparent re-attach: on EOF or
/// read timeout mid-stream it reconnects and replays from the next unseen
/// event offset, so a server restart or connection blip costs latency, not
/// events. The stream ends at the `campaign_end` event.
#[derive(Debug)]
pub struct StreamFollower {
    client: Client,
    campaign: String,
    next_from: usize,
    policy: RetryPolicy,
    ended: bool,
}

impl StreamFollower {
    /// Issues `campaign/stream` from offset 0 over `client` and reads the
    /// OK header.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData`/`NotFound` when the server
    /// rejects the stream request (e.g. unknown campaign).
    pub fn attach(client: Client, campaign: &str, policy: RetryPolicy) -> io::Result<Self> {
        let mut follower = Self {
            client,
            campaign: campaign.to_string(),
            next_from: 0,
            policy,
            ended: false,
        };
        follower.send_stream_request()?;
        Ok(follower)
    }

    fn send_stream_request(&mut self) -> io::Result<()> {
        let req = Request {
            id: format!("stream-{}", self.next_from),
            deadline_ms: None,
            body: ReqBody::CampaignStream {
                campaign: self.campaign.clone(),
                from: self.next_from,
            },
        };
        let header = self.client.call(&req)?;
        let ok = header.get("ok") == Some(&Json::Bool(true));
        if !ok {
            let msg = header
                .get("err")
                .and_then(Json::as_str)
                .unwrap_or("stream request rejected");
            let code = header.get("code").and_then(Json::as_f64).map(|c| c as u16);
            let kind = if code == Some(404) {
                io::ErrorKind::NotFound
            } else {
                io::ErrorKind::InvalidData
            };
            return Err(io::Error::new(kind, msg.to_string()));
        }
        Ok(())
    }

    /// The next event line, replaying across reconnects. `Ok(None)` once
    /// the stream's terminal `campaign_end` event has been delivered.
    ///
    /// # Errors
    ///
    /// The last transport error once the re-attach budget runs out.
    pub fn next_event(&mut self) -> io::Result<Option<String>> {
        if self.ended {
            return Ok(None);
        }
        loop {
            match self.client.read_stream_line() {
                Ok(Some(line)) => {
                    self.next_from += 1;
                    if line.contains("\"event\":\"campaign_end\"") {
                        self.ended = true;
                    }
                    return Ok(Some(line));
                }
                // EOF or timeout mid-stream: the server went away or the
                // stream stalled past the read timeout. Re-attach and
                // replay from the first unseen offset.
                Ok(None) => self.reattach()?,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    self.reattach()?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Events delivered so far — the offset a re-attach resumes from.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.next_from
    }

    /// Gives the underlying client back (e.g. to issue a status call once
    /// the stream ends).
    #[must_use]
    pub fn into_client(self) -> Client {
        self.client
    }

    fn reattach(&mut self) -> io::Result<()> {
        let mut rng = StdRng::seed_from_u64(self.policy.seed ^ self.next_from as u64);
        let mut spent = Duration::ZERO;
        let mut last_err: Option<io::Error> = None;
        for retry in 0..self.policy.attempts {
            let delay = self.policy.backoff(retry, &mut rng);
            if spent + delay > self.policy.budget {
                break;
            }
            std::thread::sleep(delay);
            spent += delay;
            match self
                .client
                .reconnect()
                .and_then(|()| self.send_stream_request())
            {
                Ok(()) => {
                    dance_telemetry::counter!("serve.client.stream_reattach");
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::TimedOut, "stream re-attach budget exhausted")
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_lines_across_chunk_boundaries() {
        let data: &[u8] = b"first\nseco";
        let mut r = LineReader::new(data);
        assert_eq!(r.read_line().expect("read"), Some("first".into()));
        // Trailing unterminated bytes surface at EOF.
        assert_eq!(r.read_line().expect("read"), Some("seco".into()));
        assert_eq!(r.read_line().expect("read"), None);
    }

    #[test]
    fn strips_carriage_returns_and_handles_empty_lines() {
        let data: &[u8] = b"a\r\n\nb\n";
        let mut r = LineReader::new(data);
        assert_eq!(r.read_line().expect("read"), Some("a".into()));
        assert_eq!(r.read_line().expect("read"), Some(String::new()));
        assert_eq!(r.read_line().expect("read"), Some("b".into()));
        assert_eq!(r.read_line().expect("read"), None);
    }

    /// A reader that times out once mid-line, then delivers the rest.
    struct Flaky {
        parts: Vec<io::Result<Vec<u8>>>,
    }

    impl Read for Flaky {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.parts.is_empty() {
                return Ok(0);
            }
            match self.parts.remove(0) {
                Ok(bytes) => {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Err(e) => Err(e),
            }
        }
    }

    #[test]
    fn timeout_mid_line_preserves_buffered_bytes() {
        let mut r = LineReader::new(Flaky {
            parts: vec![
                Ok(b"par".to_vec()),
                Err(io::Error::new(io::ErrorKind::WouldBlock, "poll")),
                Ok(b"tial\n".to_vec()),
            ],
        });
        let err = r.read_line().expect_err("timeout must surface");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        // Retry completes the frame with nothing lost.
        assert_eq!(r.read_line().expect("read"), Some("partial".into()));
    }

    #[test]
    fn backoff_grows_exponentially_within_jitter_bounds() {
        let policy = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(7);
        for retry in 0..4 {
            let nominal = Duration::from_millis(50 * (1 << retry));
            let d = policy.backoff(retry, &mut rng);
            assert!(d >= nominal / 2, "retry {retry}: {d:?} < half nominal");
            assert!(d < nominal * 3 / 2, "retry {retry}: {d:?} > 1.5x nominal");
        }
    }

    #[test]
    fn backoff_respects_the_cap() {
        let policy = RetryPolicy {
            cap: Duration::from_millis(80),
            ..RetryPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        for retry in 4..8 {
            let d = policy.backoff(retry, &mut rng);
            assert!(
                d < Duration::from_millis(120),
                "capped at 80ms * 1.5 jitter"
            );
        }
    }

    #[test]
    fn jitter_is_seed_deterministic_but_decorrelated() {
        let policy = RetryPolicy::default();
        let a: Vec<Duration> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..4).map(|r| policy.backoff(r, &mut rng)).collect()
        };
        let b: Vec<Duration> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..4).map(|r| policy.backoff(r, &mut rng)).collect()
        };
        let c: Vec<Duration> = {
            let mut rng = StdRng::seed_from_u64(2);
            (0..4).map(|r| policy.backoff(r, &mut rng)).collect()
        };
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seeds decorrelate");
    }

    #[test]
    fn retry_classification_covers_the_transport_failures() {
        for kind in [
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::NotConnected,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::TimedOut,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::UnexpectedEof,
        ] {
            assert!(retryable_io(kind), "{kind:?} must be retryable");
        }
        for kind in [
            io::ErrorKind::InvalidData,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::NotFound,
            io::ErrorKind::AddrNotAvailable,
        ] {
            assert!(!retryable_io(kind), "{kind:?} must not be retryable");
        }
    }

    #[test]
    fn connect_timeout_is_applied_per_address() {
        // Nothing listens here; with a connect timeout the failure is
        // bounded instead of hanging on the OS default.
        let t0 = std::time::Instant::now();
        let err = Client::connect_with(
            "127.0.0.1:1", // reserved port, nothing listening
            ClientConfig::from_ms(200, 500),
        )
        .expect_err("connect must fail");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "failed fast, not on the OS default"
        );
        assert!(retryable_io(err.kind()) || err.kind() == io::ErrorKind::AddrNotAvailable);
    }
}
