//! Blocking protocol client and the shared line reader.
//!
//! [`LineReader`] is a byte-buffered newline framer that survives read
//! timeouts: a `WouldBlock`/`TimedOut` error surfaces to the caller while
//! partially received bytes stay buffered, so the server's connection loops
//! can poll their drain flag between reads without tearing frames (and
//! without `BufReader::read_line`'s partial-UTF-8 hazards).
//!
//! [`Client`] is the blocking counterpart used by `serve_load`, the
//! integration tests and scripts: send one [`Request`], read one response
//! line.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use dance_telemetry::json::{self, Json};

use crate::proto::{render_request, Request};

/// Byte-buffered newline framer over any reader.
#[derive(Debug)]
pub struct LineReader<R> {
    reader: R,
    buf: Vec<u8>,
}

impl<R: Read> LineReader<R> {
    /// Wraps a reader.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            buf: Vec::with_capacity(4096),
        }
    }

    /// Reads one `\n`-terminated line (terminator stripped, lossy UTF-8).
    ///
    /// Returns `Ok(None)` on a clean EOF. Unterminated trailing bytes at
    /// EOF are returned as a final line.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; `WouldBlock`/`TimedOut` leave buffered
    /// bytes intact so the caller can simply retry.
    pub fn read_line(&mut self) -> io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.buf.iter().position(|b| *b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            let mut chunk = [0u8; 4096];
            match self.reader.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.is_empty() {
                        return Ok(None);
                    }
                    let line = String::from_utf8_lossy(&self.buf).into_owned();
                    self.buf.clear();
                    return Ok(Some(line));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
    }
}

/// A blocking protocol-v1 client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: LineReader<TcpStream>,
}

impl Client {
    /// Connects; `timeout` bounds each response read (`None` blocks).
    ///
    /// # Errors
    ///
    /// Propagates connection/setup errors.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Option<Duration>) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeout)?;
        let reader = LineReader::new(stream.try_clone()?);
        Ok(Self { stream, reader })
    }

    /// Sends one request line and reads one response line (raw bytes, no
    /// trailing newline).
    ///
    /// # Errors
    ///
    /// Transport errors, including `UnexpectedEof` if the server closed
    /// the connection before answering.
    pub fn call_raw(&mut self, req: &Request) -> io::Result<String> {
        let mut line = render_request(req);
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        self.reader
            .read_line()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection"))
    }

    /// Reads one more response line without sending anything — the client
    /// side of a streaming op (`campaign/stream`), where the server writes
    /// an OK header and then one NDJSON event per line until the stream's
    /// terminal event.
    ///
    /// # Errors
    ///
    /// Transport errors; a read timeout surfaces as `WouldBlock`/`TimedOut`
    /// with any partial line preserved for the next call.
    pub fn read_stream_line(&mut self) -> io::Result<Option<String>> {
        self.reader.read_line()
    }

    /// Sends one request and parses the response as JSON.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` when the response line is not
    /// valid JSON.
    pub fn call(&mut self, req: &Request) -> io::Result<Json> {
        let line = self.call_raw(req)?;
        json::parse(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_lines_across_chunk_boundaries() {
        let data: &[u8] = b"first\nseco";
        let mut r = LineReader::new(data);
        assert_eq!(r.read_line().expect("read"), Some("first".into()));
        // Trailing unterminated bytes surface at EOF.
        assert_eq!(r.read_line().expect("read"), Some("seco".into()));
        assert_eq!(r.read_line().expect("read"), None);
    }

    #[test]
    fn strips_carriage_returns_and_handles_empty_lines() {
        let data: &[u8] = b"a\r\n\nb\n";
        let mut r = LineReader::new(data);
        assert_eq!(r.read_line().expect("read"), Some("a".into()));
        assert_eq!(r.read_line().expect("read"), Some(String::new()));
        assert_eq!(r.read_line().expect("read"), Some("b".into()));
        assert_eq!(r.read_line().expect("read"), None);
    }

    /// A reader that times out once mid-line, then delivers the rest.
    struct Flaky {
        parts: Vec<io::Result<Vec<u8>>>,
    }

    impl Read for Flaky {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.parts.is_empty() {
                return Ok(0);
            }
            match self.parts.remove(0) {
                Ok(bytes) => {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Err(e) => Err(e),
            }
        }
    }

    #[test]
    fn timeout_mid_line_preserves_buffered_bytes() {
        let mut r = LineReader::new(Flaky {
            parts: vec![
                Ok(b"par".to_vec()),
                Err(io::Error::new(io::ErrorKind::WouldBlock, "poll")),
                Ok(b"tial\n".to_vec()),
            ],
        });
        let err = r.read_line().expect_err("timeout must surface");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        // Retry completes the frame with nothing lost.
        assert_eq!(r.read_line().expect("read"), Some("partial".into()));
    }
}
