//! Neural network layers built on the autodiff tape.
//!
//! The [`Module`] trait exposes forward evaluation and the trainable
//! parameter list. Batch normalization keeps running statistics behind
//! interior mutability so frozen (inference-mode) evaluator networks stay
//! usable through shared references, as the DANCE search loop requires.

use std::cell::{Cell, RefCell};

use rand::rngs::StdRng;

use crate::init::kaiming_uniform;
use crate::tensor::Tensor;
use crate::var::Var;

/// A trainable computation unit.
pub trait Module {
    /// Runs the module on a batch.
    fn forward(&self, input: &Var) -> Var;
    /// All trainable parameters, in a stable order.
    fn parameters(&self) -> Vec<Var>;
    /// Switches between training and inference behaviour (e.g. batch-norm).
    fn set_training(&self, training: bool) {
        let _ = training;
    }
}

/// A fully connected layer `y = xW + b`.
#[derive(Debug)]
pub struct Linear {
    weight: Var,
    bias: Var,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a layer with Kaiming-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        let weight = Var::parameter(kaiming_uniform(
            &[in_features, out_features],
            in_features,
            rng,
        ));
        let bias = Var::parameter(Tensor::zeros(&[out_features]));
        Self {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight matrix variable.
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// The bias vector variable.
    pub fn bias(&self) -> &Var {
        &self.bias
    }
}

impl Module for Linear {
    fn forward(&self, input: &Var) -> Var {
        input.matmul(&self.weight).add_row_broadcast(&self.bias)
    }

    fn parameters(&self) -> Vec<Var> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// Batch normalization over the feature axis of `[batch, features]` inputs.
///
/// Running statistics are updated in training mode and used verbatim in
/// inference mode, matching the paper's cost-estimation network which applies
/// batch normalization at every layer.
#[derive(Debug)]
pub struct BatchNorm1d {
    gamma: Var,
    beta: Var,
    running_mean: RefCell<Tensor>,
    running_var: RefCell<Tensor>,
    momentum: f32,
    eps: f32,
    training: Cell<bool>,
    features: usize,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer for `features`-wide activations.
    pub fn new(features: usize) -> Self {
        Self {
            gamma: Var::parameter(Tensor::ones(&[features])),
            beta: Var::parameter(Tensor::zeros(&[features])),
            running_mean: RefCell::new(Tensor::zeros(&[features])),
            running_var: RefCell::new(Tensor::ones(&[features])),
            momentum: 0.1,
            eps: 1e-5,
            training: Cell::new(true),
            features,
        }
    }

    /// Current running mean (for inspection/tests).
    pub fn running_mean(&self) -> Tensor {
        self.running_mean.borrow().clone()
    }

    /// Current running variance (for inspection/tests).
    pub fn running_var(&self) -> Tensor {
        self.running_var.borrow().clone()
    }

    /// Overwrites the running statistics (used when loading a saved model).
    ///
    /// # Panics
    ///
    /// Panics if either tensor's length differs from the feature count.
    pub fn set_running_stats(&self, mean: Tensor, var: Tensor) {
        assert_eq!(mean.numel(), self.features, "running mean length");
        assert_eq!(var.numel(), self.features, "running var length");
        *self.running_mean.borrow_mut() = mean;
        *self.running_var.borrow_mut() = var;
    }

    fn forward_train(&self, input: &Var) -> Var {
        let x_val = input.value();
        let (b, n) = (x_val.shape()[0], x_val.shape()[1]);
        assert!(b > 0, "batch norm on empty batch");

        // Batch statistics per feature.
        let mut mean = vec![0.0f32; n];
        for i in 0..b {
            for j in 0..n {
                mean[j] += x_val.data()[i * n + j];
            }
        }
        mean.iter_mut().for_each(|m| *m /= b as f32);
        let mut var = vec![0.0f32; n];
        for i in 0..b {
            for j in 0..n {
                let d = x_val.data()[i * n + j] - mean[j];
                var[j] += d * d;
            }
        }
        var.iter_mut().for_each(|v| *v /= b as f32);

        {
            let mut rm = self.running_mean.borrow_mut();
            let mut rv = self.running_var.borrow_mut();
            for j in 0..n {
                rm.data_mut()[j] = (1.0 - self.momentum) * rm.data()[j] + self.momentum * mean[j];
                rv.data_mut()[j] = (1.0 - self.momentum) * rv.data()[j] + self.momentum * var[j];
            }
        }

        let eps = self.eps;
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let mut x_hat = Tensor::zeros(&[b, n]);
        for i in 0..b {
            for j in 0..n {
                x_hat.data_mut()[i * n + j] = (x_val.data()[i * n + j] - mean[j]) * inv_std[j];
            }
        }

        let gamma_val = self.gamma.value();
        let beta_val = self.beta.value();
        let mut out = Tensor::zeros(&[b, n]);
        for i in 0..b {
            for j in 0..n {
                out.data_mut()[i * n + j] =
                    gamma_val.data()[j] * x_hat.data()[i * n + j] + beta_val.data()[j];
            }
        }

        let x_hat_saved = x_hat;
        let inv_std_saved = inv_std;
        Var::from_op(
            "batch_norm",
            out,
            vec![input.clone(), self.gamma.clone(), self.beta.clone()],
            Box::new(move |g, parents| {
                let bsz = b as f32;
                let mut dgamma = Tensor::zeros(&[n]);
                let mut dbeta = Tensor::zeros(&[n]);
                let mut sum_g = vec![0.0f32; n];
                let mut sum_gx = vec![0.0f32; n];
                for i in 0..b {
                    for j in 0..n {
                        let gv = g.data()[i * n + j];
                        let xh = x_hat_saved.data()[i * n + j];
                        dgamma.data_mut()[j] += gv * xh;
                        dbeta.data_mut()[j] += gv;
                        sum_g[j] += gv;
                        sum_gx[j] += gv * xh;
                    }
                }
                let mut dx = Tensor::zeros(&[b, n]);
                for i in 0..b {
                    for j in 0..n {
                        let gv = g.data()[i * n + j];
                        let xh = x_hat_saved.data()[i * n + j];
                        dx.data_mut()[i * n + j] = gamma_val.data()[j]
                            * inv_std_saved[j]
                            * (gv - sum_g[j] / bsz - xh * sum_gx[j] / bsz);
                    }
                }
                parents[0].accumulate_grad(&dx);
                parents[1].accumulate_grad(&dgamma);
                parents[2].accumulate_grad(&dbeta);
            }),
        )
    }

    fn forward_eval(&self, input: &Var) -> Var {
        let rm = self.running_mean.borrow().clone();
        let rv = self.running_var.borrow().clone();
        let eps = self.eps;
        let n = self.features;
        let scale: Vec<f32> = (0..n).map(|j| 1.0 / (rv.data()[j] + eps).sqrt()).collect();
        // y = gamma * (x − rm) * inv_std + beta, expressed with broadcast ops
        // so gradients still flow into gamma/beta (and x) if required.
        let neg_mean = Var::constant(rm.scale(-1.0));
        let inv_std = Var::constant(Tensor::from_vec(scale, &[n]));
        let centered = input.add_row_broadcast(&neg_mean);
        let x_hat = mul_row_broadcast(&centered, &inv_std);
        mul_row_broadcast(&x_hat, &self.gamma).add_row_broadcast(&self.beta)
    }
}

/// Broadcast-multiplies each row of a `[m, n]` variable by a `[n]` vector.
///
/// # Panics
///
/// Panics if `x` is not 2-D or `row` length differs from the columns.
#[must_use]
pub fn mul_row_broadcast(x: &Var, row: &Var) -> Var {
    let x_val = x.value();
    let r_val = row.value();
    assert_eq!(
        x_val.ndim(),
        2,
        "mul_row_broadcast lhs shape {:?}",
        x_val.shape()
    );
    let (m, n) = (x_val.shape()[0], x_val.shape()[1]);
    assert_eq!(
        r_val.numel(),
        n,
        "row length {} vs columns {}",
        r_val.numel(),
        n
    );
    let out = Tensor::from_vec(
        dance_backend::kernels().mul_row_broadcast(x_val.shared(), r_val.shared(), m, n),
        &[m, n],
    );
    Var::from_op(
        "mul_row_broadcast",
        out,
        vec![x.clone(), row.clone()],
        Box::new(move |g, parents| {
            let ks = dance_backend::kernels();
            let dx = Tensor::from_vec(
                ks.mul_row_broadcast(g.shared(), r_val.shared(), m, n),
                &[m, n],
            );
            // dr[j] = Σᵢ g[i,j]·x[i,j]: element-wise product then column sum,
            // in the same row-ascending accumulation order as before.
            let dr = g.mul(&x_val).sum_rows();
            parents[0].accumulate_grad(&dx);
            parents[1].accumulate_grad(&dr);
        }),
    )
}

impl Module for BatchNorm1d {
    fn forward(&self, input: &Var) -> Var {
        assert_eq!(input.shape().len(), 2, "BatchNorm1d input must be 2-D");
        assert_eq!(
            input.shape()[1],
            self.features,
            "BatchNorm1d features {} vs input {:?}",
            self.features,
            input.shape()
        );
        if self.training.get() {
            self.forward_train(input)
        } else {
            self.forward_eval(input)
        }
    }

    fn parameters(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn set_training(&self, training: bool) {
        self.training.set(training);
    }
}

/// A plain multilayer perceptron: `Linear → ReLU → … → Linear`.
#[derive(Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[in, hidden, out]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(widths: &[usize], rng: &mut StdRng) -> Self {
        assert!(
            widths.len() >= 2,
            "Mlp needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Self { layers }
    }

    /// Number of linear layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

impl Module for Mlp {
    fn forward(&self, input: &Var) -> Var {
        let mut x = input.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(&x);
            if i + 1 < self.layers.len() {
                x = x.relu();
            }
        }
        x
    }

    fn parameters(&self) -> Vec<Var> {
        self.layers.iter().flat_map(Linear::parameters).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::numeric_grad;
    use rand::SeedableRng;

    #[test]
    fn linear_output_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new(4, 7, &mut rng);
        let x = Var::constant(Tensor::zeros(&[3, 4]));
        assert_eq!(l.forward(&x).shape(), vec![3, 7]);
        assert_eq!(l.parameters().len(), 2);
    }

    #[test]
    fn linear_grad_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let l = Linear::new(3, 2, &mut rng);
        let x = Var::parameter(Tensor::rand_normal(&[4, 3], 0.0, 1.0, &mut rng));
        let params = l.parameters();
        numeric_grad(
            &[&x, &params[0], &params[1]],
            || l.forward(&x).sqr().sum(),
            1e-2,
            5e-2,
        );
    }

    #[test]
    fn batchnorm_normalizes_in_training() {
        let mut rng = StdRng::seed_from_u64(3);
        let bn = BatchNorm1d::new(5);
        let x = Var::constant(Tensor::rand_normal(&[64, 5], 3.0, 2.0, &mut rng));
        let y = bn.forward(&x).value();
        // Per-feature output mean ≈ 0 and variance ≈ 1.
        for j in 0..5 {
            let col: Vec<f32> = (0..64).map(|i| y.at2(i, j)).collect();
            let mean: f32 = col.iter().sum::<f32>() / 64.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batchnorm_grad_check_training() {
        let mut rng = StdRng::seed_from_u64(4);
        let bn = BatchNorm1d::new(3);
        let x = Var::parameter(Tensor::rand_normal(&[6, 3], 1.0, 2.0, &mut rng));
        let params = bn.parameters();
        numeric_grad(
            &[&x, &params[0], &params[1]],
            || bn.forward(&x).sqr().sum(),
            1e-2,
            8e-2,
        );
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut rng = StdRng::seed_from_u64(5);
        let bn = BatchNorm1d::new(2);
        // Feed many training batches so running stats converge.
        for _ in 0..200 {
            let x = Var::constant(Tensor::rand_normal(&[32, 2], 4.0, 1.0, &mut rng));
            let _ = bn.forward(&x);
        }
        bn.set_training(false);
        // A single point at the running mean should map to ≈ beta (0).
        let x = Var::constant(Tensor::from_vec(vec![4.0, 4.0], &[1, 2]));
        let y = bn.forward(&x).value();
        assert!(y.data().iter().all(|v| v.abs() < 0.2), "{:?}", y.data());
    }

    #[test]
    fn batchnorm_eval_grad_flows_to_gamma_beta() {
        let bn = BatchNorm1d::new(2);
        bn.set_training(false);
        let x = Var::constant(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
        bn.forward(&x).sum().backward();
        let params = bn.parameters();
        assert!(params[0].grad().is_some());
        assert!(params[1].grad().is_some());
    }

    #[test]
    fn mlp_can_fit_xor() {
        let mut rng = StdRng::seed_from_u64(6);
        let mlp = Mlp::new(&[2, 16, 1], &mut rng);
        let x = Var::constant(Tensor::from_vec(
            vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0],
            &[4, 2],
        ));
        let t = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[4, 1]);
        let params = mlp.parameters();
        for _ in 0..4_000 {
            for p in &params {
                p.zero_grad();
            }
            let loss = crate::loss::mse(&mlp.forward(&x), &t);
            loss.backward();
            for p in &params {
                if let Some(g) = p.grad() {
                    p.update_value(|v| *v = v.sub(&g.scale(0.2)));
                }
            }
        }
        let final_loss = crate::loss::mse(&mlp.forward(&x), &t).item();
        assert!(final_loss < 0.01, "XOR loss {final_loss}");
    }

    #[test]
    fn mul_row_broadcast_grad_check() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Var::parameter(Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng));
        let r = Var::parameter(Tensor::rand_normal(&[4], 0.0, 1.0, &mut rng));
        numeric_grad(
            &[&x, &r],
            || mul_row_broadcast(&x, &r).sqr().sum(),
            1e-2,
            5e-2,
        );
    }
}
