//! Differentiable operations on [`Var`].
//!
//! Every method builds a new graph node whose backward closure accumulates
//! gradients into its parents. Activations are 2-D `[batch, features]` unless
//! noted; the 1-D convolution ops operate on `[batch, channels, length]`
//! tensors used by the MBConv-1D supernet blocks.

use dance_backend::{kernels, BinaryOp, UnaryOp};

use crate::tensor::Tensor;
use crate::var::Var;

impl Var {
    /// Element-wise sum. Shapes must match.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn add(&self, other: &Var) -> Var {
        let value = self.with_value(|a| other.with_value(|b| a.add(b)));
        Var::from_op(
            "add",
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, parents| {
                parents[0].accumulate_grad(g);
                parents[1].accumulate_grad(g);
            }),
        )
    }

    /// Element-wise difference. Shapes must match.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn sub(&self, other: &Var) -> Var {
        let value = self.with_value(|a| other.with_value(|b| a.sub(b)));
        Var::from_op(
            "sub",
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, parents| {
                parents[0].accumulate_grad(g);
                parents[1].accumulate_grad(&g.scale(-1.0));
            }),
        )
    }

    /// Element-wise (Hadamard) product. Shapes must match.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn mul(&self, other: &Var) -> Var {
        let a_val = self.value();
        let b_val = other.value();
        let value = a_val.mul(&b_val);
        Var::from_op(
            "mul",
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                parents[0].accumulate_grad(&g.mul(&b_val));
                parents[1].accumulate_grad(&g.mul(&a_val));
            }),
        )
    }

    /// Element-wise quotient. Shapes must match.
    ///
    /// No zero guard is applied: dividing by a value that can reach zero
    /// produces `inf`/NaN, which is exactly what the graph linter's
    /// NaN-propagation rule flags when a `ln` consumes this node.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn div(&self, other: &Var) -> Var {
        let a_val = self.value();
        let b_val = other.value();
        assert_eq!(a_val.shape(), b_val.shape(), "div shape mismatch");
        let mut value = a_val.clone();
        for (o, &b) in value.data_mut().iter_mut().zip(b_val.data()) {
            *o /= b;
        }
        Var::from_op(
            "div",
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                let da = g.mul(&b_val.map(|b| 1.0 / b));
                let mut db = g.mul(&a_val);
                for (o, &b) in db.data_mut().iter_mut().zip(b_val.data()) {
                    *o *= -1.0 / (b * b);
                }
                parents[0].accumulate_grad(&da);
                parents[1].accumulate_grad(&db);
            }),
        )
    }

    /// Multiplies every element by the scalar `c`.
    #[must_use]
    pub fn scale(&self, c: f32) -> Var {
        let value = self.with_value(|a| a.scale(c));
        Var::from_op(
            "scale",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| parents[0].accumulate_grad(&g.scale(c))),
        )
    }

    /// Adds the scalar `c` to every element.
    #[must_use]
    pub fn add_scalar(&self, c: f32) -> Var {
        let value = self.with_value(|a| a.unary_op(UnaryOp::AddScalar(c)));
        Var::from_op(
            "add_scalar",
            value,
            vec![self.clone()],
            Box::new(|g, parents| parents[0].accumulate_grad(g)),
        )
    }

    /// Negation.
    #[must_use]
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    /// Broadcast-adds a `[n]` bias row to a `[m, n]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or `bias` length differs from the columns.
    #[must_use]
    pub fn add_row_broadcast(&self, bias: &Var) -> Var {
        let value = self.with_value(|x| {
            bias.with_value(|b| {
                assert_eq!(x.ndim(), 2, "add_row_broadcast lhs shape {:?}", x.shape());
                assert_eq!(
                    b.numel(),
                    x.shape()[1],
                    "bias length {} vs columns {}",
                    b.numel(),
                    x.shape()[1]
                );
                let (m, n) = (x.shape()[0], x.shape()[1]);
                Tensor::from_vec(
                    kernels().add_row_broadcast(x.shared(), b.shared(), m, n),
                    &[m, n],
                )
            })
        });
        Var::from_op(
            "add_row_broadcast",
            value,
            vec![self.clone(), bias.clone()],
            Box::new(|g, parents| {
                parents[0].accumulate_grad(g);
                parents[1].accumulate_grad(&g.sum_rows());
            }),
        )
    }

    /// Matrix product `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or inner dimensions disagree.
    #[must_use]
    pub fn matmul(&self, other: &Var) -> Var {
        let a_val = self.value();
        let b_val = other.value();
        let value = dance_telemetry::time("autograd.fwd.matmul", || a_val.matmul(&b_val));
        Var::from_op(
            "matmul",
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                parents[0].accumulate_grad(&g.matmul(&b_val.transpose()));
                parents[1].accumulate_grad(&a_val.transpose().matmul(g));
            }),
        )
    }

    /// Rectified linear unit, `max(x, 0)`.
    #[must_use]
    pub fn relu(&self) -> Var {
        let x_val = self.value();
        let value = x_val.unary_op(UnaryOp::Relu);
        Var::from_op(
            "relu",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let mask = x_val.unary_op(UnaryOp::ReluMask);
                parents[0].accumulate_grad(&g.mul(&mask));
            }),
        )
    }

    /// Logistic sigmoid.
    #[must_use]
    pub fn sigmoid(&self) -> Var {
        let value = self.with_value(|a| a.unary_op(UnaryOp::Sigmoid));
        let y_val = value.clone();
        Var::from_op(
            "sigmoid",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let d = y_val.unary_op(UnaryOp::SigmoidGrad);
                parents[0].accumulate_grad(&g.mul(&d));
            }),
        )
    }

    /// Hyperbolic tangent.
    #[must_use]
    pub fn tanh(&self) -> Var {
        let value = self.with_value(|a| a.unary_op(UnaryOp::Tanh));
        let y_val = value.clone();
        Var::from_op(
            "tanh",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let d = y_val.unary_op(UnaryOp::TanhGrad);
                parents[0].accumulate_grad(&g.mul(&d));
            }),
        )
    }

    /// Element-wise exponential.
    #[must_use]
    pub fn exp(&self) -> Var {
        let value = self.with_value(|a| a.unary_op(UnaryOp::Exp));
        let y_val = value.clone();
        Var::from_op(
            "exp",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| parents[0].accumulate_grad(&g.mul(&y_val))),
        )
    }

    /// Element-wise natural logarithm (inputs clamped to `1e-12` for safety).
    #[must_use]
    pub fn ln(&self) -> Var {
        let x_val = self.value();
        let value = x_val.unary_op(UnaryOp::LnClamped);
        Var::from_op(
            "ln",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let d = x_val.unary_op(UnaryOp::LnGradClamped);
                parents[0].accumulate_grad(&g.mul(&d));
            }),
        )
    }

    /// Element-wise square.
    #[must_use]
    pub fn sqr(&self) -> Var {
        self.mul(self)
    }

    /// Sum of all elements, as a `[1]` scalar.
    #[must_use]
    pub fn sum(&self) -> Var {
        let shape = self.shape();
        let value = Tensor::scalar(self.with_value(Tensor::sum));
        Var::from_op(
            "sum",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                parents[0].accumulate_grad(&Tensor::full(&shape, g.item()));
            }),
        )
    }

    /// Mean of all elements, as a `[1]` scalar.
    #[must_use]
    pub fn mean(&self) -> Var {
        let n = self.with_value(Tensor::numel).max(1);
        self.sum().scale(1.0 / n as f32)
    }

    /// Row-wise softmax of a 2-D variable.
    ///
    /// # Panics
    ///
    /// Panics if the value is not 2-D.
    #[must_use]
    pub fn softmax_rows(&self) -> Var {
        let value = self.with_value(Tensor::softmax_rows);
        let y_val = value.clone();
        Var::from_op(
            "softmax",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                // dx = y ⊙ (g − ⟨g, y⟩ per row)
                let (m, n) = (y_val.shape()[0], y_val.shape()[1]);
                let mut dx = Tensor::zeros(&[m, n]);
                for i in 0..m {
                    let y_row = &y_val.data()[i * n..(i + 1) * n];
                    let g_row = &g.data()[i * n..(i + 1) * n];
                    let dot: f32 = y_row.iter().zip(g_row).map(|(&y, &gg)| y * gg).sum();
                    for j in 0..n {
                        dx.data_mut()[i * n + j] = y_row[j] * (g_row[j] - dot);
                    }
                }
                parents[0].accumulate_grad(&dx);
            }),
        )
    }

    /// Row-wise log-softmax of a 2-D variable.
    ///
    /// # Panics
    ///
    /// Panics if the value is not 2-D.
    #[must_use]
    pub fn log_softmax_rows(&self) -> Var {
        let soft = self.with_value(Tensor::softmax_rows);
        let value = soft.map(|p| p.max(1e-20).ln());
        Var::from_op(
            "log_softmax",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                // dx = g − softmax ⊙ (row-sum of g)
                let (m, n) = (soft.shape()[0], soft.shape()[1]);
                let mut dx = Tensor::zeros(&[m, n]);
                for i in 0..m {
                    let g_row = &g.data()[i * n..(i + 1) * n];
                    let s: f32 = g_row.iter().sum();
                    for j in 0..n {
                        dx.data_mut()[i * n + j] = g_row[j] - soft.data()[i * n + j] * s;
                    }
                }
                parents[0].accumulate_grad(&dx);
            }),
        )
    }

    /// Concatenates 2-D variables along the column axis.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    #[must_use]
    pub fn concat_cols(parts: &[&Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of zero variables");
        let values: Vec<Tensor> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let value = Tensor::concat_cols(&refs);
        let widths: Vec<usize> = values.iter().map(|v| v.shape()[1]).collect();
        let parents: Vec<Var> = parts.iter().map(|p| (*p).clone()).collect();
        Var::from_op(
            "concat_cols",
            value,
            parents,
            Box::new(move |g, parents| {
                let mut offset = 0;
                for (p, &w) in parents.iter().zip(widths.iter()) {
                    p.accumulate_grad(&g.slice_cols(offset, w));
                    offset += w;
                }
            }),
        )
    }

    /// Extracts columns `[start, start + len)` from a 2-D variable.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    #[must_use]
    pub fn slice_cols(&self, start: usize, len: usize) -> Var {
        let full_shape = self.shape();
        let value = self.with_value(|v| v.slice_cols(start, len));
        Var::from_op(
            "slice_cols",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let (m, n) = (full_shape[0], full_shape[1]);
                let mut dx = Tensor::zeros(&[m, n]);
                for i in 0..m {
                    for j in 0..len {
                        dx.data_mut()[i * n + start + j] = g.data()[i * len + j];
                    }
                }
                parents[0].accumulate_grad(&dx);
            }),
        )
    }

    /// Weighted sum of same-shaped variables: `Σᵢ wᵢ·xᵢ`, with `weights`
    /// a 1-D variable of length `ops.len()`.
    ///
    /// This is the differentiable mixture used by NAS supernets: gradients
    /// flow both into every candidate op output and into the (softmaxed)
    /// architecture weights.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty, shapes differ, or `weights` has the wrong
    /// length.
    #[must_use]
    pub fn weighted_sum(ops: &[&Var], weights: &Var) -> Var {
        assert!(!ops.is_empty(), "weighted_sum of zero operands");
        let w_val = weights.value();
        assert_eq!(
            w_val.numel(),
            ops.len(),
            "weights length {} vs {} operands",
            w_val.numel(),
            ops.len()
        );
        let op_vals: Vec<Tensor> = ops.iter().map(|o| o.value()).collect();
        let shape = op_vals[0].shape().to_vec();
        let mut value = Tensor::zeros(&shape);
        for (v, &w) in op_vals.iter().zip(w_val.data()) {
            assert_eq!(v.shape(), &shape[..], "weighted_sum operand shape mismatch");
            // axpy-style fused accumulate: value[i] += v[i]·w, one kernel pass.
            value = value.binary_op(v, BinaryOp::AddScaled(w));
        }
        let mut parents: Vec<Var> = ops.iter().map(|o| (*o).clone()).collect();
        parents.push(weights.clone());
        let k = ops.len();
        Var::from_op(
            "weighted_sum",
            value,
            parents,
            Box::new(move |g, parents| {
                for i in 0..k {
                    parents[i].accumulate_grad(&g.scale(w_val.data()[i]));
                }
                let mut dw = Tensor::zeros(&[k]);
                for (i, v) in op_vals.iter().enumerate() {
                    dw.data_mut()[i] = g.mul(v).sum();
                }
                parents[k].accumulate_grad(&dw);
            }),
        )
    }

    /// Pointwise (1×1) 1-D convolution: `[B, C, L] × [K, C] (+[K]) → [B, K, L]`.
    ///
    /// # Panics
    ///
    /// Panics on rank or channel mismatches.
    #[must_use]
    pub fn pw_conv1d(&self, weight: &Var, bias: &Var) -> Var {
        let x_val = self.value();
        let w_val = weight.value();
        let b_val = bias.value();
        assert_eq!(x_val.ndim(), 3, "pw_conv1d input shape {:?}", x_val.shape());
        let (bsz, c, l) = (x_val.shape()[0], x_val.shape()[1], x_val.shape()[2]);
        assert_eq!(
            w_val.ndim(),
            2,
            "pw_conv1d weight shape {:?}",
            w_val.shape()
        );
        let (k, c2) = (w_val.shape()[0], w_val.shape()[1]);
        assert_eq!(c, c2, "pw_conv1d channels {c} vs weight {c2}");
        assert_eq!(b_val.numel(), k, "pw_conv1d bias length");

        let out = dance_telemetry::time("autograd.fwd.pw_conv1d", || {
            Tensor::from_vec(
                kernels().pw_conv1d_fwd(
                    x_val.shared(),
                    w_val.shared(),
                    b_val.shared(),
                    bsz,
                    c,
                    l,
                    k,
                ),
                &[bsz, k, l],
            )
        });
        Var::from_op(
            "pw_conv1d",
            out,
            vec![self.clone(), weight.clone(), bias.clone()],
            Box::new(move |g, parents| {
                let (dx, dw, db) = kernels().pw_conv1d_bwd(
                    x_val.shared(),
                    w_val.shared(),
                    g.shared(),
                    bsz,
                    c,
                    l,
                    k,
                );
                parents[0].accumulate_grad(&Tensor::from_vec(dx, &[bsz, c, l]));
                parents[1].accumulate_grad(&Tensor::from_vec(dw, &[k, c]));
                parents[2].accumulate_grad(&Tensor::from_vec(db, &[k]));
            }),
        )
    }

    /// Depthwise 1-D convolution with "same" zero padding:
    /// `[B, C, L] × [C, Kw] → [B, C, L]`.
    ///
    /// # Panics
    ///
    /// Panics on rank or channel mismatches, or even kernel widths.
    #[must_use]
    pub fn dw_conv1d(&self, weight: &Var) -> Var {
        let x_val = self.value();
        let w_val = weight.value();
        assert_eq!(x_val.ndim(), 3, "dw_conv1d input shape {:?}", x_val.shape());
        let (bsz, c, l) = (x_val.shape()[0], x_val.shape()[1], x_val.shape()[2]);
        assert_eq!(
            w_val.ndim(),
            2,
            "dw_conv1d weight shape {:?}",
            w_val.shape()
        );
        assert_eq!(w_val.shape()[0], c, "dw_conv1d channel mismatch");
        let kw = w_val.shape()[1];
        assert!(kw % 2 == 1, "dw_conv1d kernel width {kw} must be odd");

        let out = dance_telemetry::time("autograd.fwd.dw_conv1d", || {
            Tensor::from_vec(
                kernels().dw_conv1d_fwd(x_val.shared(), w_val.shared(), bsz, c, l, kw),
                &[bsz, c, l],
            )
        });
        Var::from_op(
            "dw_conv1d",
            out,
            vec![self.clone(), weight.clone()],
            Box::new(move |g, parents| {
                let (dx, dw) = kernels().dw_conv1d_bwd(
                    x_val.shared(),
                    w_val.shared(),
                    g.shared(),
                    bsz,
                    c,
                    l,
                    kw,
                );
                parents[0].accumulate_grad(&Tensor::from_vec(dx, &[bsz, c, l]));
                parents[1].accumulate_grad(&Tensor::from_vec(dw, &[c, kw]));
            }),
        )
    }

    /// Global average pooling over the length axis: `[B, C, L] → [B, C]`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not 3-D.
    #[must_use]
    pub fn global_avg_pool1d(&self) -> Var {
        let x_shape = self.shape();
        assert_eq!(
            x_shape.len(),
            3,
            "global_avg_pool1d input shape {x_shape:?}"
        );
        let (bsz, c, l) = (x_shape[0], x_shape[1], x_shape[2]);
        let value = self.with_value(|x| {
            let mut out = Tensor::zeros(&[bsz, c]);
            for b in 0..bsz {
                for ci in 0..c {
                    let base = (b * c + ci) * l;
                    out.data_mut()[b * c + ci] =
                        x.data()[base..base + l].iter().sum::<f32>() / l as f32;
                }
            }
            out
        });
        Var::from_op(
            "global_avg_pool1d",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let mut dx = Tensor::zeros(&[bsz, c, l]);
                for b in 0..bsz {
                    for ci in 0..c {
                        let gv = g.data()[b * c + ci] / l as f32;
                        let base = (b * c + ci) * l;
                        for li in 0..l {
                            dx.data_mut()[base + li] = gv;
                        }
                    }
                }
                parents[0].accumulate_grad(&dx);
            }),
        )
    }

    /// Permutes `[B, C, L]` activations to channels-last `[B·L, C]` so
    /// pointwise (1×1) convolutions can run through the fast matmul path.
    ///
    /// # Panics
    ///
    /// Panics if the value is not 3-D.
    #[must_use]
    pub fn to_channels_last(&self) -> Var {
        let shape = self.shape();
        assert_eq!(shape.len(), 3, "to_channels_last input shape {shape:?}");
        let (bsz, c, l) = (shape[0], shape[1], shape[2]);
        let value = self.with_value(|x| {
            Tensor::from_vec(
                kernels().to_channels_last(x.shared(), bsz, c, l),
                &[bsz * l, c],
            )
        });
        Var::from_op(
            "to_channels_last",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                // The inverse permutation is exactly `from_channels_last`.
                let dx = kernels().from_channels_last(g.shared(), bsz, c, l);
                parents[0].accumulate_grad(&Tensor::from_vec(dx, &[bsz, c, l]));
            }),
        )
    }

    /// Inverse of [`Var::to_channels_last`]: `[B·L, C] → [B, C, L]`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not 2-D or rows don't factor as `batch · length`.
    #[must_use]
    pub fn from_channels_last(&self, batch: usize, length: usize) -> Var {
        let shape = self.shape();
        assert_eq!(shape.len(), 2, "from_channels_last input shape {shape:?}");
        assert_eq!(
            shape[0],
            batch * length,
            "rows {} != {batch}·{length}",
            shape[0]
        );
        let c = shape[1];
        let value = self.with_value(|x| {
            Tensor::from_vec(
                kernels().from_channels_last(x.shared(), batch, c, length),
                &[batch, c, length],
            )
        });
        Var::from_op(
            "from_channels_last",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                // The inverse permutation is exactly `to_channels_last`.
                let dx = kernels().to_channels_last(g.shared(), batch, c, length);
                parents[0].accumulate_grad(&Tensor::from_vec(dx, &[batch * length, c]));
            }),
        )
    }

    /// Keeps every `stride`-th position along the length axis of a
    /// `[B, C, L]` activation (stride-`s` downsampling with "same" padding
    /// semantics: output length `ceil(L / stride)`).
    ///
    /// # Panics
    ///
    /// Panics if the value is not 3-D or `stride` is zero.
    #[must_use]
    pub fn downsample1d(&self, stride: usize) -> Var {
        assert!(stride > 0, "downsample1d stride must be positive");
        if stride == 1 {
            return self.clone();
        }
        let shape = self.shape();
        assert_eq!(shape.len(), 3, "downsample1d input shape {shape:?}");
        let (bsz, c, l) = (shape[0], shape[1], shape[2]);
        let lo = l.div_ceil(stride);
        let value = self.with_value(|x| {
            let mut out = Tensor::zeros(&[bsz, c, lo]);
            for b in 0..bsz {
                for ci in 0..c {
                    for (o, li) in (0..l).step_by(stride).enumerate() {
                        out.data_mut()[(b * c + ci) * lo + o] = x.data()[(b * c + ci) * l + li];
                    }
                }
            }
            out
        });
        Var::from_op(
            "downsample1d",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let mut dx = Tensor::zeros(&[bsz, c, l]);
                for b in 0..bsz {
                    for ci in 0..c {
                        for (o, li) in (0..l).step_by(stride).enumerate() {
                            dx.data_mut()[(b * c + ci) * l + li] = g.data()[(b * c + ci) * lo + o];
                        }
                    }
                }
                parents[0].accumulate_grad(&dx);
            }),
        )
    }

    /// Reshape (element count must match).
    ///
    /// # Panics
    ///
    /// Panics if the element count differs.
    #[must_use]
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let old_shape = self.shape();
        let value = self.with_value(|v| v.reshape(shape));
        Var::from_op(
            "reshape",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                parents[0].accumulate_grad(&g.reshape(&old_shape));
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::numeric_grad;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn randn(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::rand_normal(shape, 0.0, 1.0, &mut rng)
    }

    #[test]
    fn add_grad_check() {
        let a = Var::parameter(randn(&[3, 4], 1));
        let b = Var::parameter(randn(&[3, 4], 2));
        numeric_grad(&[&a, &b], || a.add(&b).sqr().sum(), 1e-2, 2e-2);
    }

    #[test]
    fn mul_grad_check() {
        let a = Var::parameter(randn(&[2, 3], 3));
        let b = Var::parameter(randn(&[2, 3], 4));
        numeric_grad(&[&a, &b], || a.mul(&b).sum(), 1e-2, 2e-2);
    }

    #[test]
    fn div_grad_check_and_value() {
        let a = Var::parameter(Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]));
        let b = Var::parameter(Tensor::from_vec(vec![2.0, 4.0, -1.5], &[3]));
        assert_eq!(a.div(&b).value().data(), &[0.5, -0.5, -2.0]);
        numeric_grad(&[&a, &b], || a.div(&b).sqr().sum(), 1e-3, 5e-2);
    }

    #[test]
    fn ops_record_their_names_and_parents() {
        let a = Var::parameter(randn(&[2, 3], 40));
        let b = Var::parameter(randn(&[3, 2], 41));
        let y = a.matmul(&b);
        assert_eq!(y.op(), "matmul");
        assert!(!y.is_leaf());
        let parent_ids: Vec<u64> = y.parents().iter().map(Var::id).collect();
        assert_eq!(parent_ids, vec![a.id(), b.id()]);
        assert_eq!(a.op(), "parameter");
        assert!(a.is_leaf());
        assert_eq!(Var::constant(Tensor::scalar(1.0)).op(), "constant");
    }

    #[test]
    fn constant_graphs_stay_walkable_without_gradients() {
        // Parents are kept even on gradient-free nodes (for graph linting),
        // but backward still never descends into them.
        let a = Var::constant(Tensor::scalar(2.0));
        let y = a.mul(&a);
        assert_eq!(y.parents().len(), 2);
        y.backward();
        assert!(a.grad().is_none());
    }

    #[test]
    fn matmul_grad_check() {
        let a = Var::parameter(randn(&[3, 4], 5));
        let b = Var::parameter(randn(&[4, 2], 6));
        numeric_grad(&[&a, &b], || a.matmul(&b).sqr().sum(), 1e-2, 5e-2);
    }

    #[test]
    fn relu_forward_and_grad() {
        let x = Var::parameter(Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[4]));
        let y = x.relu();
        assert_eq!(y.value().data(), &[0.0, 2.0, 0.0, 4.0]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_grad_check() {
        let x = Var::parameter(randn(&[5], 7));
        numeric_grad(&[&x], || x.sigmoid().sum(), 1e-2, 2e-2);
    }

    #[test]
    fn tanh_grad_check() {
        let x = Var::parameter(randn(&[5], 8));
        numeric_grad(&[&x], || x.tanh().sum(), 1e-2, 2e-2);
    }

    #[test]
    fn exp_ln_grad_check() {
        let x = Var::parameter(Tensor::from_vec(vec![0.5, 1.0, 2.0], &[3]));
        numeric_grad(&[&x], || x.exp().sum(), 1e-3, 2e-2);
        numeric_grad(&[&x], || x.ln().sum(), 1e-3, 2e-2);
    }

    #[test]
    fn softmax_rows_grad_check() {
        let x = Var::parameter(randn(&[2, 5], 9));
        numeric_grad(&[&x], || x.softmax_rows().sqr().sum(), 1e-2, 2e-2);
    }

    #[test]
    fn log_softmax_grad_check() {
        let x = Var::parameter(randn(&[2, 4], 10));
        numeric_grad(&[&x], || x.log_softmax_rows().sqr().sum(), 1e-2, 5e-2);
    }

    #[test]
    fn add_row_broadcast_grad_check() {
        let x = Var::parameter(randn(&[3, 4], 11));
        let b = Var::parameter(randn(&[4], 12));
        numeric_grad(
            &[&x, &b],
            || x.add_row_broadcast(&b).sqr().sum(),
            1e-2,
            3e-2,
        );
    }

    #[test]
    fn concat_slice_grad_check() {
        let a = Var::parameter(randn(&[2, 3], 13));
        let b = Var::parameter(randn(&[2, 2], 14));
        numeric_grad(
            &[&a, &b],
            || Var::concat_cols(&[&a, &b]).slice_cols(1, 3).sqr().sum(),
            1e-2,
            3e-2,
        );
    }

    #[test]
    fn weighted_sum_grad_check() {
        let a = Var::parameter(randn(&[2, 3], 15));
        let b = Var::parameter(randn(&[2, 3], 16));
        let w = Var::parameter(Tensor::from_vec(vec![0.3, 0.7], &[2]));
        numeric_grad(
            &[&a, &b, &w],
            || Var::weighted_sum(&[&a, &b], &w).sqr().sum(),
            1e-2,
            3e-2,
        );
    }

    #[test]
    fn pw_conv1d_grad_check() {
        let x = Var::parameter(randn(&[2, 3, 4], 17));
        let w = Var::parameter(randn(&[5, 3], 18).scale(0.5));
        let b = Var::parameter(randn(&[5], 19).scale(0.1));
        numeric_grad(
            &[&x, &w, &b],
            || x.pw_conv1d(&w, &b).sqr().sum(),
            1e-2,
            8e-2,
        );
    }

    #[test]
    fn dw_conv1d_grad_check() {
        let x = Var::parameter(randn(&[2, 3, 6], 20));
        let w = Var::parameter(randn(&[3, 3], 21).scale(0.5));
        numeric_grad(&[&x, &w], || x.dw_conv1d(&w).sqr().sum(), 1e-2, 8e-2);
    }

    #[test]
    fn dw_conv1d_identity_kernel_is_identity() {
        let x = Var::constant(randn(&[1, 2, 5], 22));
        // kernel [0, 1, 0] per channel ⇒ output equals input
        let w = Var::constant(Tensor::from_vec(
            vec![0.0, 1.0, 0.0, 0.0, 1.0, 0.0],
            &[2, 3],
        ));
        let y = x.dw_conv1d(&w);
        assert!(y.value().approx_eq(&x.value(), 1e-6));
    }

    #[test]
    fn global_avg_pool_grad_check() {
        let x = Var::parameter(randn(&[2, 3, 4], 23));
        numeric_grad(&[&x], || x.global_avg_pool1d().sqr().sum(), 1e-2, 3e-2);
    }

    #[test]
    fn pw_conv1d_matches_manual() {
        let x = Var::constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]));
        let w = Var::constant(Tensor::from_vec(vec![1.0, 1.0], &[1, 2]));
        let b = Var::constant(Tensor::from_vec(vec![0.5], &[1]));
        // out[l] = x[0,l] + x[1,l] + 0.5
        let y = x.pw_conv1d(&w, &b);
        assert_eq!(y.value().data(), &[4.5, 6.5]);
    }

    #[test]
    fn reshape_grad_passthrough() {
        let x = Var::parameter(randn(&[2, 6], 24));
        numeric_grad(&[&x], || x.reshape(&[3, 4]).sqr().sum(), 1e-2, 3e-2);
    }

    #[test]
    fn channels_last_roundtrip_is_identity() {
        let x = Var::parameter(randn(&[2, 3, 4], 25));
        let y = x.to_channels_last().from_channels_last(2, 4);
        assert!(y.value().approx_eq(&x.value(), 1e-6));
        numeric_grad(&[&x], || x.to_channels_last().sqr().sum(), 1e-2, 3e-2);
    }

    #[test]
    fn channels_last_matmul_matches_pw_conv() {
        let x = Var::constant(randn(&[2, 3, 5], 26));
        let w = Var::constant(randn(&[4, 3], 27));
        let b = Var::constant(Tensor::zeros(&[4]));
        let direct = x.pw_conv1d(&w, &b);
        let via_matmul = x
            .to_channels_last()
            .matmul(&Var::constant(w.value().transpose()))
            .from_channels_last(2, 5);
        assert!(via_matmul.value().approx_eq(&direct.value(), 1e-4));
    }

    #[test]
    fn downsample_picks_strided_positions() {
        let x = Var::parameter(Tensor::from_vec(
            (0..10).map(|i| i as f32).collect(),
            &[1, 2, 5],
        ));
        let y = x.downsample1d(2);
        assert_eq!(y.shape(), vec![1, 2, 3]);
        assert_eq!(y.value().data(), &[0.0, 2.0, 4.0, 5.0, 7.0, 9.0]);
        numeric_grad(&[&x], || x.downsample1d(2).sqr().sum(), 1e-2, 3e-2);
    }

    #[test]
    fn downsample_stride_one_is_identity() {
        let x = Var::parameter(randn(&[1, 2, 4], 28));
        assert_eq!(x.downsample1d(1).value(), x.value());
    }

    #[test]
    fn mean_is_sum_over_n() {
        let x = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 6.0], &[4]));
        assert_eq!(x.mean().item(), 3.0);
        x.mean().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.25; 4]);
    }
}
