//! Weight initialization schemes.

use rand::rngs::StdRng;

use crate::tensor::Tensor;

/// Kaiming (He) uniform initialization for ReLU networks:
/// `U(−√(6/fan_in), √(6/fan_in))`.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn kaiming_uniform(shape: &[usize], fan_in: usize, rng: &mut StdRng) -> Tensor {
    assert!(fan_in > 0, "kaiming_uniform fan_in must be positive");
    let bound = (6.0 / fan_in as f32).sqrt();
    Tensor::rand_uniform(shape, -bound, bound, rng)
}

/// Xavier/Glorot uniform initialization:
/// `U(−√(6/(fan_in+fan_out)), √(6/(fan_in+fan_out)))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out` is zero.
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    assert!(fan_in + fan_out > 0, "xavier_uniform fans must be positive");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(shape, -bound, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kaiming_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = kaiming_uniform(&[100, 50], 100, &mut rng);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= bound));
        assert!(t.max() > bound * 0.8, "initialization suspiciously narrow");
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = xavier_uniform(&[64, 64], 64, 64, &mut rng);
        let bound = (6.0f32 / 128.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= bound));
    }
}
