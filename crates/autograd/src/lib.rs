#![warn(missing_docs)]

//! # dance-autograd
//!
//! A tape-based reverse-mode automatic differentiation engine — the DNN
//! training substrate of the DANCE reproduction (Choi et al., DAC 2021).
//!
//! The paper implements its co-exploration in PyTorch; this crate provides
//! the minimal but complete equivalent in pure Rust: dense [`tensor::Tensor`]
//! values, a define-by-run graph of [`var::Var`] nodes, neural-network layers
//! ([`nn`]), losses including the paper's MSRE ([`loss`]), Gumbel-softmax
//! sampling ([`gumbel`]), and optimizers with the paper's schedules
//! ([`optim`]).
//!
//! ```
//! use dance_autograd::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let layer = Linear::new(4, 2, &mut rng);
//! let x = Var::constant(Tensor::ones(&[8, 4]));
//! let loss = layer.forward(&x).sqr().mean();
//! loss.backward();
//! assert!(layer.weight().grad().is_some());
//! ```

pub mod gumbel;
pub mod init;
pub mod loss;
pub mod nn;
pub mod ops;
pub mod opspec;
pub mod optim;
pub mod serialize;
pub mod tensor;
pub mod testing;
pub mod var;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::gumbel::{gumbel_softmax, softmax_with_temperature, straight_through_onehot};
    pub use crate::loss::{accuracy, cross_entropy, l2_penalty, mse, msre};
    pub use crate::nn::{BatchNorm1d, Linear, Mlp, Module};
    pub use crate::optim::{clip_grad_norm, Adam, CosineLr, Optimizer, Sgd, StepLr};
    pub use crate::serialize::{load_tensors, save_tensors};
    pub use crate::tensor::Tensor;
    pub use crate::var::Var;
}
