//! Test utilities: finite-difference gradient checking.

use crate::tensor::Tensor;
use crate::var::Var;

/// Checks analytic gradients of `f` against central finite differences for
/// every parameter in `params`.
///
/// `f` must rebuild the graph from the current parameter values on each call
/// and return a scalar variable. Errors are compared with a mixed
/// absolute/relative tolerance `tol`.
///
/// # Panics
///
/// Panics when any gradient entry disagrees beyond the tolerance — this is a
/// test helper and failure is the signal.
pub fn numeric_grad(params: &[&Var], f: impl Fn() -> Var, eps: f32, tol: f32) {
    for p in params {
        p.zero_grad();
    }
    let loss = f();
    loss.backward();
    let analytic: Vec<Tensor> = params
        .iter()
        .map(|p| p.grad().unwrap_or_else(|| Tensor::zeros(&p.shape())))
        .collect();

    for (pi, p) in params.iter().enumerate() {
        let base = p.value();
        for i in 0..base.numel() {
            let mut plus = base.clone();
            plus.data_mut()[i] += eps;
            p.set_value(plus);
            let l_plus = f().item();

            let mut minus = base.clone();
            minus.data_mut()[i] -= eps;
            p.set_value(minus);
            let l_minus = f().item();

            p.set_value(base.clone());

            let numeric = (l_plus - l_minus) / (2.0 * eps);
            let got = analytic[pi].data()[i];
            let denom = 1.0_f32.max(numeric.abs()).max(got.abs());
            assert!(
                (numeric - got).abs() / denom <= tol,
                "gradient mismatch for param {pi} element {i}: numeric {numeric} vs analytic {got}"
            );
        }
    }
    for p in params {
        p.zero_grad();
    }
}
