//! Optimizers and learning-rate schedules.
//!
//! DANCE trains supernet weights with SGD + Nesterov momentum under cosine
//! scheduling and the evaluator networks with Adam/SGD, so both are provided.

use crate::tensor::Tensor;
use crate::var::Var;

/// A gradient-based parameter updater.
pub trait Optimizer {
    /// Applies one update step using the accumulated gradients.
    fn step(&mut self);
    /// Clears gradients of all managed parameters.
    fn zero_grad(&self);
    /// Overrides the learning rate (e.g. from a schedule).
    fn set_lr(&mut self, lr: f32);
    /// Current learning rate.
    fn lr(&self) -> f32;
}

/// Stochastic gradient descent with optional (Nesterov) momentum and
/// decoupled weight decay.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Var>,
    lr: f32,
    momentum: f32,
    nesterov: bool,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates a plain SGD optimizer.
    pub fn new(params: Vec<Var>, lr: f32) -> Self {
        let velocity = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Self {
            params,
            lr,
            momentum: 0.0,
            nesterov: false,
            weight_decay: 0.0,
            velocity,
        }
    }

    /// Enables momentum with the given coefficient.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Enables Nesterov momentum (requires `momentum > 0`).
    pub fn with_nesterov(mut self) -> Self {
        self.nesterov = true;
        self
    }

    /// Enables L2 weight decay applied to the gradient.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// The momentum buffers, one per managed parameter — exposed so resume
    /// can serialize the full optimizer state (restarting with zeroed
    /// velocity silently changes the trajectory).
    pub fn velocity(&self) -> &[Tensor] {
        &self.velocity
    }

    /// Replaces the momentum buffers (checkpoint restore).
    ///
    /// # Errors
    ///
    /// Returns an error naming the offending buffer when the count or any
    /// shape disagrees with the managed parameters.
    pub fn set_velocity(&mut self, velocity: Vec<Tensor>) -> Result<(), String> {
        check_state_tensors("sgd velocity", &self.params, &velocity)?;
        self.velocity = velocity;
        Ok(())
    }
}

/// Validates that `tensors` matches `params` one-to-one in count and shape.
fn check_state_tensors(what: &str, params: &[Var], tensors: &[Tensor]) -> Result<(), String> {
    if tensors.len() != params.len() {
        return Err(format!(
            "{what}: {} buffers for {} parameters",
            tensors.len(),
            params.len()
        ));
    }
    for (i, (t, p)) in tensors.iter().zip(params).enumerate() {
        if t.shape() != p.shape() {
            return Err(format!(
                "{what}[{i}]: shape {:?} vs parameter {:?}",
                t.shape(),
                p.shape()
            ));
        }
    }
    Ok(())
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for (i, p) in self.params.iter().enumerate() {
            let Some(mut g) = p.grad() else { continue };
            if self.weight_decay > 0.0 {
                g.add_assign(&p.value().scale(self.weight_decay));
            }
            let update = if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                *v = v.scale(self.momentum).add(&g);
                if self.nesterov {
                    g.add(&v.scale(self.momentum))
                } else {
                    v.clone()
                }
            } else {
                g
            };
            let lr = self.lr;
            p.update_value(|val| *val = val.sub(&update.scale(lr)));
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba 2015) with optional L2 weight decay.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Var>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u32,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β = (0.9, 0.999).
    pub fn new(params: Vec<Var>, lr: f32) -> Self {
        let m = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        let v = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Self {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            m,
            v,
            t: 0,
        }
    }

    /// Enables L2 weight decay applied to the gradient.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// The first- and second-moment buffers, one pair per parameter —
    /// exposed so resume can serialize the full optimizer state.
    pub fn moments(&self) -> (&[Tensor], &[Tensor]) {
        (&self.m, &self.v)
    }

    /// Replaces the moment buffers (checkpoint restore).
    ///
    /// # Errors
    ///
    /// Returns an error naming the offending buffer when the count or any
    /// shape disagrees with the managed parameters.
    pub fn set_moments(&mut self, m: Vec<Tensor>, v: Vec<Tensor>) -> Result<(), String> {
        check_state_tensors("adam m", &self.params, &m)?;
        check_state_tensors("adam v", &self.params, &v)?;
        self.m = m;
        self.v = v;
        Ok(())
    }

    /// The number of steps taken so far (drives bias correction; a resume
    /// that restores moments but not the step count is subtly wrong).
    pub fn step_count(&self) -> u32 {
        self.t
    }

    /// Overwrites the step count (checkpoint restore).
    pub fn set_step_count(&mut self, t: u32) {
        self.t = t;
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let Some(mut g) = p.grad() else { continue };
            if self.weight_decay > 0.0 {
                g.add_assign(&p.value().scale(self.weight_decay));
            }
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            *m = m.scale(self.beta1).add(&g.scale(1.0 - self.beta1));
            *v = v.scale(self.beta2).add(&g.mul(&g).scale(1.0 - self.beta2));
            let lr = self.lr;
            let eps = self.eps;
            let m_hat = m.scale(1.0 / bc1);
            let v_hat = v.scale(1.0 / bc2);
            p.update_value(|val| {
                let denom = v_hat.map(|x| x.sqrt() + eps);
                *val = val.sub(&m_hat.div(&denom).scale(lr));
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Cosine-annealed learning-rate schedule, `lr(t) = lr₀ · ½(1 + cos(πt/T))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineLr {
    base_lr: f32,
    total_steps: usize,
}

impl CosineLr {
    /// Creates a schedule decaying from `base_lr` to zero over `total_steps`.
    ///
    /// # Panics
    ///
    /// Panics if `total_steps` is zero.
    pub fn new(base_lr: f32, total_steps: usize) -> Self {
        assert!(total_steps > 0, "cosine schedule needs at least one step");
        Self {
            base_lr,
            total_steps,
        }
    }

    /// Learning rate at step `t` (clamped to the final step).
    pub fn lr_at(&self, step: usize) -> f32 {
        let t = step.min(self.total_steps) as f32 / self.total_steps as f32;
        self.base_lr * 0.5 * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

/// Step-decay schedule: multiply the learning rate by `gamma` every
/// `step_size` steps (the paper's hardware-generation-network recipe:
/// 0.001 decayed ×0.1 every 50 epochs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepLr {
    base_lr: f32,
    step_size: usize,
    gamma: f32,
}

impl StepLr {
    /// Creates a step-decay schedule.
    ///
    /// # Panics
    ///
    /// Panics if `step_size` is zero.
    pub fn new(base_lr: f32, step_size: usize, gamma: f32) -> Self {
        assert!(step_size > 0, "step schedule needs a positive period");
        Self {
            base_lr,
            step_size,
            gamma,
        }
    }

    /// Learning rate at step `t`.
    pub fn lr_at(&self, step: usize) -> f32 {
        self.base_lr * self.gamma.powi((step / self.step_size) as i32)
    }
}

/// Rescales gradients in place so their global L2 norm is at most `max_norm`.
/// Returns the pre-clipping norm.
pub fn clip_grad_norm(params: &[Var], max_norm: f32) -> f32 {
    let total: f32 = params
        .iter()
        .filter_map(Var::grad)
        .map(|g| g.sq_norm())
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for p in params {
            if let Some(g) = p.grad() {
                p.zero_grad();
                p.accumulate_grad(&g.scale(scale));
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x − 3)² and returns the final x.
    fn minimize(opt_builder: impl FnOnce(Vec<Var>) -> Box<dyn Optimizer>, steps: usize) -> f32 {
        let x = Var::parameter(Tensor::scalar(0.0));
        let mut opt = opt_builder(vec![x.clone()]);
        for _ in 0..steps {
            opt.zero_grad();
            let loss = x.add_scalar(-3.0).sqr().sum();
            loss.backward();
            opt.step();
        }
        x.value().item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimize(|p| Box::new(Sgd::new(p, 0.1)), 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let x = minimize(|p| Box::new(Sgd::new(p, 0.05).with_momentum(0.9)), 200);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn sgd_nesterov_converges() {
        let x = minimize(
            |p| Box::new(Sgd::new(p, 0.05).with_momentum(0.9).with_nesterov()),
            200,
        );
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = minimize(|p| Box::new(Adam::new(p, 0.3)), 200);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        // With loss ≡ 0 but weight decay on, parameters shrink.
        let x = Var::parameter(Tensor::scalar(1.0));
        let mut opt = Sgd::new(vec![x.clone()], 0.1).with_weight_decay(0.5);
        for _ in 0..10 {
            opt.zero_grad();
            x.scale(0.0).sum().backward();
            opt.step();
        }
        assert!(x.value().item() < 0.7);
    }

    #[test]
    fn cosine_schedule_endpoints() {
        let s = CosineLr::new(1.0, 100);
        assert!((s.lr_at(0) - 1.0).abs() < 1e-6);
        assert!(s.lr_at(100) < 1e-6);
        assert!((s.lr_at(50) - 0.5).abs() < 1e-6);
        assert!(s.lr_at(200) < 1e-6, "clamps past the end");
    }

    #[test]
    fn step_schedule_decays_by_gamma() {
        let s = StepLr::new(0.001, 50, 0.1);
        assert!((s.lr_at(0) - 0.001).abs() < 1e-9);
        assert!((s.lr_at(49) - 0.001).abs() < 1e-9);
        assert!((s.lr_at(50) - 0.0001).abs() < 1e-9);
        assert!((s.lr_at(150) - 0.000001).abs() < 1e-10);
    }

    #[test]
    fn clip_grad_norm_caps_norm() {
        let x = Var::parameter(Tensor::from_vec(vec![3.0, 4.0], &[2]));
        x.sqr().sum().backward(); // grad = (6, 8), norm 10
        let pre = clip_grad_norm(&[x.clone()], 1.0);
        assert!((pre - 10.0).abs() < 1e-4);
        let g = x.grad().unwrap();
        assert!((g.sq_norm().sqrt() - 1.0).abs() < 1e-4);
    }

    /// One optimization step of f(x) = (x − 3)² for an arbitrary optimizer.
    fn quadratic_step(x: &Var, opt: &mut dyn Optimizer) {
        opt.zero_grad();
        x.add_scalar(-3.0).sqr().sum().backward();
        opt.step();
    }

    #[test]
    fn sgd_state_roundtrip_reproduces_trajectory() {
        let x1 = Var::parameter(Tensor::scalar(0.0));
        let mut a = Sgd::new(vec![x1.clone()], 0.05).with_momentum(0.9);
        for _ in 0..7 {
            quadratic_step(&x1, &mut a);
        }
        // Clone state into a fresh optimizer over a fresh parameter at the
        // same value; both must evolve identically from here.
        let x2 = Var::parameter(x1.value());
        let mut b = Sgd::new(vec![x2.clone()], 0.05).with_momentum(0.9);
        b.set_velocity(a.velocity().to_vec())
            .expect("same-shaped velocity restores");
        for _ in 0..5 {
            quadratic_step(&x1, &mut a);
            quadratic_step(&x2, &mut b);
        }
        assert_eq!(x1.value().item().to_bits(), x2.value().item().to_bits());
    }

    #[test]
    fn adam_state_roundtrip_reproduces_trajectory() {
        let x1 = Var::parameter(Tensor::scalar(0.0));
        let mut a = Adam::new(vec![x1.clone()], 0.1);
        for _ in 0..7 {
            quadratic_step(&x1, &mut a);
        }
        let x2 = Var::parameter(x1.value());
        let mut b = Adam::new(vec![x2.clone()], 0.1);
        let (m, v) = a.moments();
        b.set_moments(m.to_vec(), v.to_vec())
            .expect("same-shaped moments restore");
        b.set_step_count(a.step_count());
        for _ in 0..5 {
            quadratic_step(&x1, &mut a);
            quadratic_step(&x2, &mut b);
        }
        assert_eq!(x1.value().item().to_bits(), x2.value().item().to_bits());
        assert_eq!(a.step_count(), b.step_count());
    }

    #[test]
    fn optimizer_state_shape_mismatch_is_rejected() {
        let x = Var::parameter(Tensor::scalar(0.0));
        let mut sgd = Sgd::new(vec![x.clone()], 0.1);
        assert!(sgd.set_velocity(vec![]).is_err(), "count mismatch accepted");
        assert!(
            sgd.set_velocity(vec![Tensor::zeros(&[2])]).is_err(),
            "shape mismatch accepted"
        );
        let mut adam = Adam::new(vec![x.clone()], 0.1);
        assert!(adam
            .set_moments(vec![Tensor::zeros(&[2])], vec![Tensor::zeros(&[2])])
            .is_err());
    }

    #[test]
    fn step_skips_params_without_grad() {
        let x = Var::parameter(Tensor::scalar(1.0));
        let mut opt = Sgd::new(vec![x.clone()], 0.1);
        opt.step(); // no gradient accumulated — must be a no-op
        assert_eq!(x.value().item(), 1.0);
    }
}
