//! Dense row-major `f32` tensors.
//!
//! [`Tensor`] is the value type that flows through the autodiff tape in
//! [`crate::var`]. It is deliberately simple: contiguous storage plus a
//! shape. The storage is an `Arc<Vec<f32>>` so clones are O(1) and the
//! compute kernels in `dance-backend` can share it with pool workers without
//! copying; mutation goes through copy-on-write ([`Tensor::data_mut`]).
//! The hot operations (matmul, transpose, element-wise maps, reductions,
//! softmax) dispatch through [`dance_backend::kernels`], whose parallel
//! implementation is bit-identical to the original scalar loops at any
//! `DANCE_THREADS` setting. All operations are implemented for the ranks the
//! DANCE stack actually needs (scalars, vectors, matrices and
//! `[batch, channel, length]` activations), with shape checks that panic
//! loudly on misuse.
//!
//! ```
//! use dance_autograd::tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

use std::fmt;
use std::sync::Arc;

use dance_backend::{kernels, BinaryOp, UnaryOp};
use rand::rngs::StdRng;
use rand::Rng;

/// A dense row-major tensor of `f32` values with shared, copy-on-write
/// storage.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Arc<Vec<f32>>,
    shape: Vec<usize>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:?}, ... {} values]",
                &self.data[..8],
                self.data.len()
            )
        }
    }
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self {
            data: Arc::new(data),
            shape: shape.to_vec(),
        }
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            data: Arc::new(vec![0.0; shape.iter().product()]),
            shape: shape.to_vec(),
        }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self {
            data: Arc::new(vec![value; shape.iter().product()]),
            shape: shape.to_vec(),
        }
    }

    /// A rank-0-like scalar stored as shape `[1]`.
    pub fn scalar(value: f32) -> Self {
        Self {
            data: Arc::new(vec![value]),
            shape: vec![1],
        }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut data = vec![0.0f32; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Self {
            data: Arc::new(data),
            shape: vec![n, n],
        }
    }

    /// Uniform random values in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Self {
        let numel: usize = shape.iter().product();
        let data = (0..numel).map(|_| rng.gen_range(lo..hi)).collect();
        Self {
            data: Arc::new(data),
            shape: shape.to_vec(),
        }
    }

    /// Normally distributed random values (Box–Muller transform).
    pub fn rand_normal(shape: &[usize], mean: f32, std: f32, rng: &mut StdRng) -> Self {
        let numel: usize = shape.iter().product();
        let mut data = Vec::with_capacity(numel);
        while data.len() < numel {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < numel {
                data.push(mean + std * r * theta.sin());
            }
        }
        Self {
            data: Arc::new(data),
            shape: shape.to_vec(),
        }
    }

    /// A one-hot row vector of length `n` with a one at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n`.
    pub fn one_hot(index: usize, n: usize) -> Self {
        assert!(
            index < n,
            "one-hot index {index} out of range for length {n}"
        );
        let mut data = vec![0.0f32; n];
        data[index] = 1.0;
        Self {
            data: Arc::new(data),
            shape: vec![n],
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// The shared storage handle, for handing to backend kernels without a
    /// copy.
    pub fn shared(&self) -> &Arc<Vec<f32>> {
        &self.data
    }

    /// Mutable view of the underlying data (copy-on-write: clones the
    /// storage first if it is shared with another tensor or a kernel job).
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consumes the tensor, returning the underlying data (cloning only if
    /// the storage is still shared).
    pub fn into_data(self) -> Vec<f32> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }

    /// The single value of a one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() on tensor with shape {:?}",
            self.shape
        );
        self.data[0]
    }

    /// Returns a reshaped copy (O(1): the storage is shared).
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            self.data.len(),
            numel,
            "data length {} does not match shape {:?}",
            self.data.len(),
            shape
        );
        Self {
            data: self.data.clone(),
            shape: shape.to_vec(),
        }
    }

    /// Element at 2-D index `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the index is out of bounds.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        assert_eq!(self.ndim(), 2, "at2 on tensor with shape {:?}", self.shape);
        assert!(row < self.shape[0] && col < self.shape[1]);
        self.data[row * self.shape[1] + col]
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            data: Arc::new(self.data.iter().map(|&x| f(x)).collect()),
            shape: self.shape.clone(),
        }
    }

    /// Combines two same-shaped tensors element-wise.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "zip_map shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        Self {
            data: Arc::new(
                self.data
                    .iter()
                    .zip(other.data.iter())
                    .map(|(&a, &b)| f(a, b))
                    .collect(),
            ),
            shape: self.shape.clone(),
        }
    }

    /// Applies a backend element-wise unary kernel.
    pub fn unary_op(&self, op: UnaryOp) -> Self {
        Self {
            data: Arc::new(kernels().unary(&self.data, op)),
            shape: self.shape.clone(),
        }
    }

    /// Applies a backend element-wise binary kernel.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn binary_op(&self, other: &Self, op: BinaryOp) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "binary op shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        Self {
            data: Arc::new(kernels().binary(&self.data, &other.data, op)),
            shape: self.shape.clone(),
        }
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Self) -> Self {
        self.binary_op(other, BinaryOp::Add)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Self) -> Self {
        self.binary_op(other, BinaryOp::Sub)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &Self) -> Self {
        self.binary_op(other, BinaryOp::Mul)
    }

    /// Element-wise quotient.
    pub fn div(&self, other: &Self) -> Self {
        self.binary_op(other, BinaryOp::Div)
    }

    /// Multiplies every element by `c`.
    pub fn scale(&self, c: f32) -> Self {
        self.unary_op(UnaryOp::Scale(c))
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Self) {
        assert_eq!(
            self.shape, other.shape,
            "add_assign shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        for (a, b) in self.data_mut().iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Fills the tensor with zeros in place.
    pub fn fill_zero(&mut self) {
        self.data_mut().iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        kernels().sum(&self.data)
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest element (`-inf` when empty).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// The squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Matrix product of two 2-D tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the inner dimensions disagree.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.ndim(),
            2,
            "matmul lhs must be 2-D, got {:?}",
            self.shape
        );
        assert_eq!(
            other.ndim(),
            2,
            "matmul rhs must be 2-D, got {:?}",
            other.shape
        );
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(
            k, k2,
            "matmul inner dims: {:?} × {:?}",
            self.shape, other.shape
        );
        Self {
            data: Arc::new(kernels().matmul(&self.data, &other.data, m, k, n)),
            shape: vec![m, n],
        }
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Self {
        assert_eq!(
            self.ndim(),
            2,
            "transpose on tensor with shape {:?}",
            self.shape
        );
        let (m, n) = (self.shape[0], self.shape[1]);
        Self {
            data: Arc::new(kernels().transpose(&self.data, m, n)),
            shape: vec![n, m],
        }
    }

    /// Sums a `[rows, cols]` tensor over its rows, producing `[cols]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn sum_rows(&self) -> Self {
        assert_eq!(
            self.ndim(),
            2,
            "sum_rows on tensor with shape {:?}",
            self.shape
        );
        let (m, n) = (self.shape[0], self.shape[1]);
        Self {
            data: Arc::new(kernels().sum_rows(&self.data, m, n)),
            shape: vec![n],
        }
    }

    /// Index of the maximum element in each row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(
            self.ndim(),
            2,
            "argmax_rows on tensor with shape {:?}",
            self.shape
        );
        let (m, n) = (self.shape[0], self.shape[1]);
        assert!(n > 0, "argmax_rows on tensor with zero columns");
        (0..m)
            .map(|i| {
                let row = &self.data[i * n..(i + 1) * n];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Index of the maximum element of a 1-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax on empty tensor");
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Concatenates 2-D tensors along the column axis.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty, any part is not 2-D, or row counts differ.
    pub fn concat_cols(parts: &[&Tensor]) -> Self {
        assert!(!parts.is_empty(), "concat_cols of zero tensors");
        let rows = parts[0].shape[0];
        for p in parts {
            assert_eq!(p.ndim(), 2, "concat_cols part with shape {:?}", p.shape);
            assert_eq!(p.shape[0], rows, "concat_cols row mismatch");
        }
        let total_cols: usize = parts.iter().map(|p| p.shape[1]).sum();
        let mut out = vec![0.0f32; rows * total_cols];
        for i in 0..rows {
            let mut offset = 0;
            for p in parts {
                let c = p.shape[1];
                out[i * total_cols + offset..i * total_cols + offset + c]
                    .copy_from_slice(&p.data[i * c..(i + 1) * c]);
                offset += c;
            }
        }
        Self {
            data: Arc::new(out),
            shape: vec![rows, total_cols],
        }
    }

    /// Extracts columns `[start, start + len)` from a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the range exceeds the column count.
    pub fn slice_cols(&self, start: usize, len: usize) -> Self {
        assert_eq!(
            self.ndim(),
            2,
            "slice_cols on tensor with shape {:?}",
            self.shape
        );
        let (m, n) = (self.shape[0], self.shape[1]);
        assert!(
            start + len <= n,
            "slice_cols [{start}, {}) out of {n}",
            start + len
        );
        let mut out = vec![0.0f32; m * len];
        for i in 0..m {
            out[i * len..(i + 1) * len]
                .copy_from_slice(&self.data[i * n + start..i * n + start + len]);
        }
        Self {
            data: Arc::new(out),
            shape: vec![m, len],
        }
    }

    /// Row-wise numerically stable softmax of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn softmax_rows(&self) -> Self {
        assert_eq!(
            self.ndim(),
            2,
            "softmax_rows on tensor with shape {:?}",
            self.shape
        );
        let (m, n) = (self.shape[0], self.shape[1]);
        Self {
            data: Arc::new(kernels().softmax_rows(&self.data, m, n)),
            shape: vec![m, n],
        }
    }

    /// Returns `true` when every element differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Self, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Self::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.at2(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_shape_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::rand_uniform(&[4, 7], -1.0, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0], &[2, 3]);
        let s = t.softmax_rows();
        for i in 0..2 {
            let sum: f32 = (0..3).map(|j| s.at2(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!(s.data().iter().all(|&x| x > 0.0));
    }

    #[test]
    fn softmax_rows_is_shift_invariant() {
        let t = Tensor::from_vec(vec![100.0, 101.0, 102.0], &[1, 3]);
        let u = Tensor::from_vec(vec![0.0, 1.0, 2.0], &[1, 3]);
        assert!(t.softmax_rows().approx_eq(&u.softmax_rows(), 1e-6));
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0, 9.0, 10.0], &[2, 3]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 5]);
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 3), b);
    }

    #[test]
    fn sum_rows_matches_manual() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.sum_rows().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn one_hot_has_single_one() {
        let t = Tensor::one_hot(2, 5);
        assert_eq!(t.sum(), 1.0);
        assert_eq!(t.data()[2], 1.0);
    }

    #[test]
    fn rand_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::rand_normal(&[10_000], 1.0, 2.0, &mut rng);
        assert!((t.mean() - 1.0).abs() < 0.1);
        let var = t.map(|x| (x - t.mean()).powi(2)).mean();
        assert!((var - 4.0).abs() < 0.3);
    }

    #[test]
    fn eye_is_identity_for_matmul() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::rand_uniform(&[5, 5], -2.0, 2.0, &mut rng);
        assert!(a.matmul(&Tensor::eye(5)).approx_eq(&a, 1e-6));
    }

    #[test]
    fn clone_shares_storage_and_mutation_is_cow() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let mut b = a.clone();
        assert!(Arc::ptr_eq(a.shared(), b.shared()), "clone must be O(1)");
        b.data_mut()[0] = 9.0;
        assert_eq!(
            a.data(),
            &[1.0, 2.0, 3.0],
            "CoW must not touch the original"
        );
        assert_eq!(b.data(), &[9.0, 2.0, 3.0]);
    }
}
