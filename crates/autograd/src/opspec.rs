//! Declarative op metadata: the registry [`GraphLint`-style] passes use to
//! verify a built tape *before* training starts.
//!
//! Every interior node created through [`crate::var::Var::from_op`] records
//! the `&'static str` name of the op that produced it. This module maps each
//! name to an [`OpSpec`]: its arity, whether gradients flow through it, and a
//! symbolic *shape rule* that re-derives the legal output shape from the
//! parent shapes. A static analysis pass can therefore walk a finished graph
//! and re-check every node without re-executing any numeric code — the
//! difference between a shape bug panicking mid-epoch and being reported
//! before the first step.
//!
//! Adding an op is three steps: give the `Var::from_op` call a new name, add
//! an `OpSpec` row to [`REGISTRY`], and (if differentiable) add a probe to
//! the registry-driven gradient check in `crates/analyze/tests/`.

/// How many parents an op accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// Exactly `n` parents.
    Exact(usize),
    /// `n` or more parents (variadic ops such as `concat_cols`).
    AtLeast(usize),
}

impl Arity {
    /// Whether `n` parents satisfies this arity.
    #[must_use]
    pub fn accepts(&self, n: usize) -> bool {
        match *self {
            Arity::Exact(k) => n == k,
            Arity::AtLeast(k) => n >= k,
        }
    }
}

/// Outcome of a shape rule: `Ok(())` if `out` is a legal output shape for
/// the given parent shapes, `Err(reason)` otherwise.
pub type ShapeCheck = Result<(), String>;

/// A symbolic shape rule: `(parent_shapes, output_shape) -> ShapeCheck`.
///
/// Rules validate relationships rather than recompute attributes: an op with
/// non-tensor attributes (`reshape`, `slice_cols`, …) checks the invariants
/// that hold for every legal attribute value (element count preserved, row
/// count unchanged, …).
pub type ShapeRule = fn(&[Vec<usize>], &[usize]) -> ShapeCheck;

/// Static metadata describing one differentiable (or gradient-blocking) op.
#[derive(Debug, Clone, Copy)]
pub struct OpSpec {
    /// The name recorded on tape nodes.
    pub name: &'static str,
    /// Number of parents the op accepts.
    pub arity: Arity,
    /// Whether gradients flow through this op into its parents.
    pub differentiable: bool,
    /// Symbolic output-shape validation.
    pub shape_rule: ShapeRule,
}

fn fmt_shapes(shapes: &[Vec<usize>]) -> String {
    let parts: Vec<String> = shapes.iter().map(|s| format!("{s:?}")).collect();
    parts.join(", ")
}

fn same_as_first(parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    if parents[0] == out {
        Ok(())
    } else {
        Err(format!("output {out:?} must match input {:?}", parents[0]))
    }
}

fn elementwise(parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    if parents.iter().any(|p| p != &parents[0]) {
        return Err(format!("operand shapes differ: {}", fmt_shapes(parents)));
    }
    same_as_first(parents, out)
}

fn scalar_out(_parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    if out.iter().product::<usize>() == 1 {
        Ok(())
    } else {
        Err(format!("output {out:?} must be a one-element scalar"))
    }
}

fn matmul_rule(parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    let (a, b) = (&parents[0], &parents[1]);
    if a.len() != 2 || b.len() != 2 {
        return Err(format!(
            "matmul needs 2-D operands, got {}",
            fmt_shapes(parents)
        ));
    }
    if a[1] != b[0] {
        return Err(format!("inner dimensions disagree: {a:?} × {b:?}"));
    }
    if out == [a[0], b[1]] {
        Ok(())
    } else {
        Err(format!("output {out:?} must be [{}, {}]", a[0], b[1]))
    }
}

fn row_broadcast_rule(parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    let (x, row) = (&parents[0], &parents[1]);
    if x.len() != 2 {
        return Err(format!("lhs must be 2-D, got {x:?}"));
    }
    if row.iter().product::<usize>() != x[1] {
        return Err(format!("row operand {row:?} must have {} elements", x[1]));
    }
    same_as_first(parents, out)
}

fn softmax_rule(parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    if parents[0].len() != 2 {
        return Err(format!("input must be 2-D, got {:?}", parents[0]));
    }
    same_as_first(parents, out)
}

fn concat_cols_rule(parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    let rows = parents[0].first().copied().unwrap_or(0);
    let mut cols = 0;
    for p in parents {
        if p.len() != 2 {
            return Err(format!("concat_cols operand must be 2-D, got {p:?}"));
        }
        if p[0] != rows {
            return Err(format!("row counts differ: {}", fmt_shapes(parents)));
        }
        cols += p[1];
    }
    if out == [rows, cols] {
        Ok(())
    } else {
        Err(format!("output {out:?} must be [{rows}, {cols}]"))
    }
}

fn slice_cols_rule(parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    let x = &parents[0];
    if x.len() != 2 {
        return Err(format!("input must be 2-D, got {x:?}"));
    }
    if out.len() != 2 || out[0] != x[0] {
        return Err(format!("output {out:?} must keep {} rows", x[0]));
    }
    if out[1] <= x[1] {
        Ok(())
    } else {
        Err(format!("cannot slice {} columns out of {}", out[1], x[1]))
    }
}

fn weighted_sum_rule(parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    // Parents are k same-shaped operands followed by a k-element weight
    // vector.
    let k = parents.len() - 1;
    let weights = &parents[k];
    if weights.iter().product::<usize>() != k {
        return Err(format!("weights {weights:?} must have {k} elements"));
    }
    if parents[..k].iter().any(|p| p != &parents[0]) {
        return Err(format!(
            "operand shapes differ: {}",
            fmt_shapes(&parents[..k])
        ));
    }
    same_as_first(parents, out)
}

fn pw_conv1d_rule(parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    let (x, w, b) = (&parents[0], &parents[1], &parents[2]);
    if x.len() != 3 || w.len() != 2 {
        return Err(format!(
            "pw_conv1d needs [B,C,L] input and [K,C] weight, got {}",
            fmt_shapes(parents)
        ));
    }
    if w[1] != x[1] {
        return Err(format!(
            "weight channels {} vs input channels {}",
            w[1], x[1]
        ));
    }
    if b.iter().product::<usize>() != w[0] {
        return Err(format!("bias {b:?} must have {} elements", w[0]));
    }
    if out == [x[0], w[0], x[2]] {
        Ok(())
    } else {
        Err(format!(
            "output {out:?} must be [{}, {}, {}]",
            x[0], w[0], x[2]
        ))
    }
}

fn dw_conv1d_rule(parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    let (x, w) = (&parents[0], &parents[1]);
    if x.len() != 3 || w.len() != 2 {
        return Err(format!(
            "dw_conv1d needs [B,C,L] input and [C,Kw] weight, got {}",
            fmt_shapes(parents)
        ));
    }
    if w[0] != x[1] {
        return Err(format!(
            "weight channels {} vs input channels {}",
            w[0], x[1]
        ));
    }
    if w[1] % 2 == 0 {
        return Err(format!("kernel width {} must be odd", w[1]));
    }
    if out == x.as_slice() {
        Ok(())
    } else {
        Err(format!("output {out:?} must match input {x:?}"))
    }
}

fn gap1d_rule(parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    let x = &parents[0];
    if x.len() != 3 {
        return Err(format!("input must be [B,C,L], got {x:?}"));
    }
    if out == [x[0], x[1]] {
        Ok(())
    } else {
        Err(format!("output {out:?} must be [{}, {}]", x[0], x[1]))
    }
}

fn to_channels_last_rule(parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    let x = &parents[0];
    if x.len() != 3 {
        return Err(format!("input must be [B,C,L], got {x:?}"));
    }
    if out == [x[0] * x[2], x[1]] {
        Ok(())
    } else {
        Err(format!(
            "output {out:?} must be [{}, {}]",
            x[0] * x[2],
            x[1]
        ))
    }
}

fn from_channels_last_rule(parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    let x = &parents[0];
    if x.len() != 2 {
        return Err(format!("input must be [B·L, C], got {x:?}"));
    }
    if out.len() != 3 || out[1] != x[1] || out[0] * out[2] != x[0] {
        return Err(format!(
            "output {out:?} must factor the {} rows of {x:?}",
            x[0]
        ));
    }
    Ok(())
}

fn downsample1d_rule(parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    let x = &parents[0];
    if x.len() != 3 {
        return Err(format!("input must be [B,C,L], got {x:?}"));
    }
    if out.len() != 3 || out[0] != x[0] || out[1] != x[1] {
        return Err(format!("output {out:?} must keep batch/channels of {x:?}"));
    }
    if out[2] >= 1 && out[2] <= x[2] {
        Ok(())
    } else {
        Err(format!("output length {} must be in [1, {}]", out[2], x[2]))
    }
}

fn reshape_rule(parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    let (a, b) = (
        parents[0].iter().product::<usize>(),
        out.iter().product::<usize>(),
    );
    if a == b {
        Ok(())
    } else {
        Err(format!("reshape changes element count: {a} -> {b}"))
    }
}

fn batch_norm_rule(parents: &[Vec<usize>], out: &[usize]) -> ShapeCheck {
    let (x, gamma, beta) = (&parents[0], &parents[1], &parents[2]);
    if x.len() != 2 {
        return Err(format!("input must be 2-D, got {x:?}"));
    }
    let n = x[1];
    if gamma.iter().product::<usize>() != n || beta.iter().product::<usize>() != n {
        return Err(format!(
            "gamma {gamma:?} / beta {beta:?} must have {n} elements"
        ));
    }
    same_as_first(parents, out)
}

/// The full op registry. Order is irrelevant; names must be unique.
pub const REGISTRY: &[OpSpec] = &[
    OpSpec {
        name: "add",
        arity: Arity::Exact(2),
        differentiable: true,
        shape_rule: elementwise,
    },
    OpSpec {
        name: "sub",
        arity: Arity::Exact(2),
        differentiable: true,
        shape_rule: elementwise,
    },
    OpSpec {
        name: "mul",
        arity: Arity::Exact(2),
        differentiable: true,
        shape_rule: elementwise,
    },
    OpSpec {
        name: "div",
        arity: Arity::Exact(2),
        differentiable: true,
        shape_rule: elementwise,
    },
    OpSpec {
        name: "scale",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: same_as_first,
    },
    OpSpec {
        name: "add_scalar",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: same_as_first,
    },
    OpSpec {
        name: "relu",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: same_as_first,
    },
    OpSpec {
        name: "sigmoid",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: same_as_first,
    },
    OpSpec {
        name: "tanh",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: same_as_first,
    },
    OpSpec {
        name: "exp",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: same_as_first,
    },
    OpSpec {
        name: "ln",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: same_as_first,
    },
    OpSpec {
        name: "sum",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: scalar_out,
    },
    OpSpec {
        name: "matmul",
        arity: Arity::Exact(2),
        differentiable: true,
        shape_rule: matmul_rule,
    },
    OpSpec {
        name: "add_row_broadcast",
        arity: Arity::Exact(2),
        differentiable: true,
        shape_rule: row_broadcast_rule,
    },
    OpSpec {
        name: "mul_row_broadcast",
        arity: Arity::Exact(2),
        differentiable: true,
        shape_rule: row_broadcast_rule,
    },
    OpSpec {
        name: "softmax",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: softmax_rule,
    },
    OpSpec {
        name: "log_softmax",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: softmax_rule,
    },
    OpSpec {
        name: "concat_cols",
        arity: Arity::AtLeast(1),
        differentiable: true,
        shape_rule: concat_cols_rule,
    },
    OpSpec {
        name: "slice_cols",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: slice_cols_rule,
    },
    OpSpec {
        name: "weighted_sum",
        arity: Arity::AtLeast(2),
        differentiable: true,
        shape_rule: weighted_sum_rule,
    },
    OpSpec {
        name: "pw_conv1d",
        arity: Arity::Exact(3),
        differentiable: true,
        shape_rule: pw_conv1d_rule,
    },
    OpSpec {
        name: "dw_conv1d",
        arity: Arity::Exact(2),
        differentiable: true,
        shape_rule: dw_conv1d_rule,
    },
    OpSpec {
        name: "global_avg_pool1d",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: gap1d_rule,
    },
    OpSpec {
        name: "to_channels_last",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: to_channels_last_rule,
    },
    OpSpec {
        name: "from_channels_last",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: from_channels_last_rule,
    },
    OpSpec {
        name: "downsample1d",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: downsample1d_rule,
    },
    OpSpec {
        name: "reshape",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: reshape_rule,
    },
    OpSpec {
        name: "batch_norm",
        arity: Arity::Exact(3),
        differentiable: true,
        shape_rule: batch_norm_rule,
    },
    OpSpec {
        name: "cross_entropy",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: scalar_out,
    },
    OpSpec {
        name: "straight_through_onehot",
        arity: Arity::Exact(1),
        differentiable: true,
        shape_rule: softmax_rule,
    },
];

/// Looks up the spec for an op name; `None` for unregistered ops (the graph
/// linter reports those).
#[must_use]
pub fn op_spec(name: &str) -> Option<&'static OpSpec> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// Op names reserved for leaf nodes; they have no spec on purpose.
pub const LEAF_PARAMETER: &str = "parameter";
/// Leaf op name for constants.
pub const LEAF_CONSTANT: &str = "constant";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        for (i, a) in REGISTRY.iter().enumerate() {
            for b in &REGISTRY[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate op spec");
            }
        }
    }

    #[test]
    fn lookup_finds_registered_and_rejects_leaves() {
        assert!(op_spec("matmul").is_some());
        assert!(op_spec("parameter").is_none());
        assert!(op_spec("no_such_op").is_none());
    }

    #[test]
    fn matmul_rule_accepts_and_rejects() {
        let parents = vec![vec![3, 4], vec![4, 2]];
        assert!(matmul_rule(&parents, &[3, 2]).is_ok());
        assert!(matmul_rule(&parents, &[3, 3]).is_err());
        assert!(matmul_rule(&[vec![3, 4], vec![5, 2]], &[3, 2]).is_err());
    }

    #[test]
    fn elementwise_rule_rejects_mismatched_operands() {
        assert!(elementwise(&[vec![2, 3], vec![2, 3]], &[2, 3]).is_ok());
        assert!(elementwise(&[vec![2, 3], vec![3, 2]], &[2, 3]).is_err());
        assert!(elementwise(&[vec![2, 3], vec![2, 3]], &[3, 2]).is_err());
    }

    #[test]
    fn structural_rules_hold_for_representative_shapes() {
        assert!(concat_cols_rule(&[vec![1, 7], vec![1, 7]], &[1, 14]).is_ok());
        assert!(concat_cols_rule(&[vec![1, 7], vec![2, 7]], &[3, 7]).is_err());
        assert!(weighted_sum_rule(&[vec![2, 3], vec![2, 3], vec![2]], &[2, 3]).is_ok());
        assert!(weighted_sum_rule(&[vec![2, 3], vec![2, 3], vec![3]], &[2, 3]).is_err());
        assert!(pw_conv1d_rule(&[vec![2, 3, 4], vec![5, 3], vec![5]], &[2, 5, 4]).is_ok());
        assert!(pw_conv1d_rule(&[vec![2, 3, 4], vec![5, 4], vec![5]], &[2, 5, 4]).is_err());
        assert!(reshape_rule(&[vec![2, 6]], &[3, 4]).is_ok());
        assert!(reshape_rule(&[vec![2, 6]], &[3, 5]).is_err());
        assert!(from_channels_last_rule(&[vec![8, 3]], &[2, 3, 4]).is_ok());
        assert!(from_channels_last_rule(&[vec![8, 3]], &[2, 3, 5]).is_err());
    }
}
