//! Lossless text serialization of named tensors.
//!
//! Trained evaluator networks are expensive to produce (ground-truth
//! generation plus training), so they are worth persisting. The format is a
//! deliberately simple line-oriented text file — one tensor per line,
//! values as hexadecimal `f32` bit patterns so round trips are exact:
//!
//! ```text
//! dance-tensors v1
//! <name>;<d0>,<d1>,...;<hex> <hex> ...
//! ```

use std::fs;
use std::io;
use std::path::Path;

use crate::tensor::Tensor;

const MAGIC: &str = "dance-tensors v1";

/// Writes named tensors to `path` (parent directories are created).
///
/// The write is atomic: content goes to a sibling temporary file which is
/// renamed over `path`, so a crash mid-save can never leave a truncated
/// checkpoint where a valid one used to be.
///
/// # Errors
///
/// Returns any I/O error from creating, writing or renaming the file.
pub fn save_tensors(path: impl AsRef<Path>, items: &[(String, Tensor)]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = String::from(MAGIC);
    out.push('\n');
    for (name, tensor) in items {
        assert!(
            !name.contains(';') && !name.contains('\n'),
            "tensor name {name:?} contains a reserved character"
        );
        out.push_str(name);
        out.push(';');
        let dims: Vec<String> = tensor.shape().iter().map(|d| d.to_string()).collect();
        out.push_str(&dims.join(","));
        out.push(';');
        let mut first = true;
        for &v in tensor.data() {
            if !first {
                out.push(' ');
            }
            first = false;
            out.push_str(&format!("{:08x}", v.to_bits()));
        }
        out.push('\n');
    }
    // analyze:allow(determinism) pid names the temp file only; contents are seeded
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    fs::write(&tmp, out)?;
    if let Err(e) = fs::rename(&tmp, path) {
        let _cleanup = fs::remove_file(&tmp); // best effort; the error below matters more
        return Err(e);
    }
    Ok(())
}

/// Reads named tensors from `path`.
///
/// # Errors
///
/// Returns an I/O error when the file cannot be read or is malformed
/// (wrong magic, bad shape, value count mismatch).
pub fn load_tensors(path: impl AsRef<Path>) -> io::Result<Vec<(String, Tensor)>> {
    let content = fs::read_to_string(&path)?;
    let mut lines = content.lines();
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if lines.next() != Some(MAGIC) {
        return Err(bad("missing dance-tensors header"));
    }
    let mut items = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, ';');
        let name = parts
            .next()
            .ok_or_else(|| bad(&format!("line {}: missing name", lineno + 2)))?;
        let shape_str = parts
            .next()
            .ok_or_else(|| bad(&format!("line {}: missing shape", lineno + 2)))?;
        let data_str = parts
            .next()
            .ok_or_else(|| bad(&format!("line {}: missing data", lineno + 2)))?;
        let shape: Vec<usize> = if shape_str.is_empty() {
            Vec::new()
        } else {
            shape_str
                .split(',')
                .map(|d| d.parse::<usize>())
                .collect::<Result<_, _>>()
                .map_err(|e| bad(&format!("line {}: bad shape: {e}", lineno + 2)))?
        };
        let data: Vec<f32> = if data_str.is_empty() {
            Vec::new()
        } else {
            data_str
                .split(' ')
                .map(|h| u32::from_str_radix(h, 16).map(f32::from_bits))
                .collect::<Result<_, _>>()
                .map_err(|e| bad(&format!("line {}: bad value: {e}", lineno + 2)))?
        };
        let numel: usize = shape.iter().product();
        if data.len() != numel {
            return Err(bad(&format!(
                "line {}: shape {:?} expects {} values, found {}",
                lineno + 2,
                shape,
                numel,
                data.len()
            )));
        }
        items.push((name.to_string(), Tensor::from_vec(data, &shape)));
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dance_serialize_{name}_{}.txt", std::process::id()))
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let mut rng = StdRng::seed_from_u64(0);
        let items = vec![
            (
                "weights".to_string(),
                Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng),
            ),
            (
                "bias".to_string(),
                Tensor::from_vec(vec![f32::MIN_POSITIVE, -0.0, 1e30], &[3]),
            ),
            ("scalar".to_string(), Tensor::scalar(std::f32::consts::PI)),
        ];
        let path = temp("roundtrip");
        save_tensors(&path, &items).unwrap();
        let loaded = load_tensors(&path).unwrap();
        assert_eq!(items.len(), loaded.len());
        for ((n1, t1), (n2, t2)) in items.iter().zip(&loaded) {
            assert_eq!(n1, n2);
            assert_eq!(t1.shape(), t2.shape());
            for (a, b) in t1.data().iter().zip(t2.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "bit-exactness violated");
            }
        }
        let _ = fs::remove_file(path);
    }

    #[test]
    fn missing_header_is_invalid_data() {
        let path = temp("noheader");
        fs::write(&path, "not a tensor file\n").unwrap();
        let err = load_tensors(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn count_mismatch_is_invalid_data() {
        let path = temp("mismatch");
        fs::write(&path, format!("{MAGIC}\nw;2,2;3f800000 3f800000\n")).unwrap();
        let err = load_tensors(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn empty_file_roundtrip() {
        let path = temp("empty");
        save_tensors(&path, &[]).unwrap();
        assert!(load_tensors(&path).unwrap().is_empty());
        let _ = fs::remove_file(path);
    }
}
