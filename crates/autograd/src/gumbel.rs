//! Gumbel-softmax sampling (Jang, Gu & Poole 2017).
//!
//! DANCE uses a Gumbel softmax as the last layer of the hardware generation
//! network so that its (continuous) output stays as close as possible to the
//! one-hot vectors the cost estimation network was trained on, while keeping
//! a gradient path to the architecture parameters.

use rand::rngs::StdRng;
use rand::Rng;

use crate::tensor::Tensor;
use crate::var::Var;

/// Draws i.i.d. standard Gumbel noise `g = −ln(−ln(u))`.
pub fn gumbel_noise(shape: &[usize], rng: &mut StdRng) -> Tensor {
    let numel: usize = shape.iter().product();
    let data = (0..numel)
        .map(|_| {
            let u: f32 = rng.gen_range(f32::EPSILON..1.0);
            -(-u.ln()).ln()
        })
        .collect();
    Tensor::from_vec(data, shape)
}

/// Row-wise Gumbel-softmax relaxation of a categorical distribution.
///
/// `logits` must be 2-D `[rows, classes]`. Returns
/// `softmax((logits + g) / tau)` where `g` is fresh Gumbel noise. Lower `tau`
/// pushes the output toward a one-hot sample while remaining differentiable.
///
/// # Panics
///
/// Panics if `logits` is not 2-D or `tau` is not positive.
#[must_use]
pub fn gumbel_softmax(logits: &Var, tau: f32, rng: &mut StdRng) -> Var {
    assert!(
        tau > 0.0,
        "gumbel_softmax temperature must be positive, got {tau}"
    );
    let shape = logits.shape();
    assert_eq!(shape.len(), 2, "gumbel_softmax logits shape {shape:?}");
    let noise = Var::constant(gumbel_noise(&shape, rng));
    logits.add(&noise).scale(1.0 / tau).softmax_rows()
}

/// Deterministic softmax with temperature (Gumbel-softmax without noise);
/// useful at evaluation time and for the no-Gumbel ablation.
///
/// # Panics
///
/// Panics if `logits` is not 2-D or `tau` is not positive.
#[must_use]
pub fn softmax_with_temperature(logits: &Var, tau: f32) -> Var {
    assert!(tau > 0.0, "temperature must be positive, got {tau}");
    logits.scale(1.0 / tau).softmax_rows()
}

/// Straight-through estimator: the forward value is the row-wise one-hot
/// argmax of `soft`, while the backward pass treats the op as identity, so
/// gradients flow as if the soft value had been used.
///
/// # Panics
///
/// Panics if `soft` is not 2-D.
#[must_use]
pub fn straight_through_onehot(soft: &Var) -> Var {
    let soft_val = soft.value();
    assert_eq!(
        soft_val.ndim(),
        2,
        "straight_through_onehot shape {:?}",
        soft_val.shape()
    );
    let (m, n) = (soft_val.shape()[0], soft_val.shape()[1]);
    let mut hard = Tensor::zeros(&[m, n]);
    for (i, j) in soft_val.argmax_rows().into_iter().enumerate() {
        hard.data_mut()[i * n + j] = 1.0;
    }
    Var::from_op(
        "straight_through_onehot",
        hard,
        vec![soft.clone()],
        Box::new(|g, parents| parents[0].accumulate_grad(g)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn noise_has_gumbel_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = gumbel_noise(&[50_000], &mut rng);
        // Standard Gumbel mean is the Euler–Mascheroni constant ≈ 0.5772.
        assert!((g.mean() - 0.5772).abs() < 0.02, "mean {}", g.mean());
    }

    #[test]
    fn gumbel_softmax_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(6);
        let logits = Var::constant(Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0],
            &[2, 3],
        ));
        let y = gumbel_softmax(&logits, 1.0, &mut rng).value();
        for i in 0..2 {
            let s: f32 = (0..3).map(|j| y.at2(i, j)).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn low_temperature_approaches_one_hot() {
        let mut rng = StdRng::seed_from_u64(7);
        let logits = Var::constant(Tensor::from_vec(vec![5.0, 0.0, -5.0], &[1, 3]));
        let y = gumbel_softmax(&logits, 0.05, &mut rng).value();
        assert!(y.max() > 0.99, "max prob {}", y.max());
    }

    #[test]
    fn gumbel_samples_follow_logits_distribution() {
        let mut rng = StdRng::seed_from_u64(8);
        let logits = Var::constant(Tensor::from_vec(vec![2.0, 0.0, 0.0], &[1, 3]));
        let mut counts = [0usize; 3];
        for _ in 0..2_000 {
            let y = gumbel_softmax(&logits, 0.5, &mut rng).value();
            counts[y.argmax()] += 1;
        }
        // P(class 0) = e²/(e²+2) ≈ 0.787
        assert!(counts[0] > 1_400, "counts {counts:?}");
    }

    #[test]
    fn straight_through_forward_is_one_hot_backward_is_identity() {
        let logits = Var::parameter(Tensor::from_vec(vec![0.1, 0.7, 0.2], &[1, 3]));
        let soft = logits.softmax_rows();
        let hard = straight_through_onehot(&soft);
        assert_eq!(hard.value().data(), &[0.0, 1.0, 0.0]);
        hard.sqr().sum().backward();
        // Gradient reached the logits through the soft path.
        assert!(logits.grad().is_some());
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_panics() {
        let mut rng = StdRng::seed_from_u64(9);
        let logits = Var::constant(Tensor::zeros(&[1, 2]));
        let _ = gumbel_softmax(&logits, 0.0, &mut rng);
    }
}
