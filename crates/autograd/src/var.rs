//! The reverse-mode autodiff tape.
//!
//! A [`Var`] wraps a [`Tensor`] value together with an optional backward
//! closure and the list of parent variables it was computed from. Calling
//! [`Var::backward`] on a scalar result walks the graph in reverse
//! topological order, accumulating gradients into every variable that
//! requires them — exactly the define-by-run model DANCE's search loop needs,
//! where one loss mixes cross-entropy through the supernet with hardware cost
//! through the frozen evaluator network.
//!
//! ```
//! use dance_autograd::var::Var;
//! use dance_autograd::tensor::Tensor;
//!
//! let x = Var::parameter(Tensor::from_vec(vec![3.0], &[1]));
//! let y = x.mul(&x).scale(2.0); // y = 2x²
//! y.backward();
//! assert_eq!(x.grad().unwrap().data(), &[12.0]); // dy/dx = 4x
//! ```

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::opspec::{LEAF_CONSTANT, LEAF_PARAMETER};
use crate::tensor::Tensor;

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Backward closure: receives the upstream gradient of this node and the
/// parent variables, and accumulates gradients into the parents.
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor, &[Var])>;

pub(crate) struct Node {
    id: u64,
    op: &'static str,
    value: Tensor,
    grad: Option<Tensor>,
    requires_grad: bool,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
}

/// A node in the autodiff graph.
///
/// `Var` is a cheaply clonable handle (`Rc` internally); cloning shares the
/// underlying node, which is how parameters participate in many graphs.
#[derive(Clone)]
pub struct Var {
    inner: Rc<RefCell<Node>>,
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.inner.borrow();
        write!(
            f,
            "Var(id={}, shape={:?}, requires_grad={})",
            n.id,
            n.value.shape(),
            n.requires_grad
        )
    }
}

impl Var {
    fn from_node(node: Node) -> Self {
        Self {
            inner: Rc::new(RefCell::new(node)),
        }
    }

    /// A trainable leaf variable (gradient will be accumulated).
    pub fn parameter(value: Tensor) -> Self {
        Self::from_node(Node {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            op: LEAF_PARAMETER,
            value,
            grad: None,
            requires_grad: true,
            parents: Vec::new(),
            backward: None,
        })
    }

    /// A constant leaf variable (no gradient flows into it).
    pub fn constant(value: Tensor) -> Self {
        Self::from_node(Node {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            op: LEAF_CONSTANT,
            value,
            grad: None,
            requires_grad: false,
            parents: Vec::new(),
            backward: None,
        })
    }

    /// Builds an interior graph node from parents and a backward closure.
    ///
    /// `op` names the operation for graph introspection (static analysis
    /// re-checks it against the [`crate::opspec`] registry). Parents are kept
    /// even on gradient-free nodes so linters can walk the full graph; the
    /// backward closure of a gradient-free subgraph is still dropped, and
    /// [`Var::backward`] never descends into `!requires_grad` nodes, so the
    /// tape continues to skip them entirely.
    pub(crate) fn from_op(
        op: &'static str,
        value: Tensor,
        parents: Vec<Var>,
        backward: BackwardFn,
    ) -> Self {
        dance_telemetry::counter!("tape.nodes");
        let requires_grad = parents.iter().any(Var::requires_grad);
        Self::from_node(Node {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            op,
            value,
            grad: None,
            requires_grad,
            parents,
            backward: if requires_grad { Some(backward) } else { None },
        })
    }

    /// Builds a node with an arbitrary op name, value, and parents but no
    /// backward closure. Only for tests that need deliberately malformed
    /// graphs (wrong arity, impossible shapes, unknown ops) to exercise the
    /// static graph linter; never use it to build real computations.
    #[doc(hidden)]
    #[must_use]
    pub fn raw_for_testing(op: &'static str, value: Tensor, parents: Vec<Var>) -> Self {
        let requires_grad = parents.iter().any(Var::requires_grad);
        Self::from_node(Node {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            op,
            value,
            grad: None,
            requires_grad,
            parents,
            backward: None,
        })
    }

    /// Unique node id (useful for debugging graph shapes).
    pub fn id(&self) -> u64 {
        self.inner.borrow().id
    }

    /// The name of the op that produced this node (`"parameter"` /
    /// `"constant"` for leaves).
    #[must_use]
    pub fn op(&self) -> &'static str {
        self.inner.borrow().op
    }

    /// Clones of the parent handles this node was computed from.
    ///
    /// Empty for leaves. Cheap: each clone is an `Rc` bump.
    #[must_use]
    pub fn parents(&self) -> Vec<Var> {
        self.inner.borrow().parents.clone()
    }

    /// Whether this node is a leaf (a parameter or constant with no parents).
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.inner.borrow().parents.is_empty()
    }

    /// Whether gradients flow into this variable.
    pub fn requires_grad(&self) -> bool {
        self.inner.borrow().requires_grad
    }

    /// A clone of the tensor value.
    pub fn value(&self) -> Tensor {
        self.inner.borrow().value.clone()
    }

    /// Runs `f` on the value without cloning it.
    pub fn with_value<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.inner.borrow().value)
    }

    /// The shape of the value.
    pub fn shape(&self) -> Vec<usize> {
        self.inner.borrow().value.shape().to_vec()
    }

    /// The scalar value of a one-element variable.
    ///
    /// # Panics
    ///
    /// Panics if the value has more than one element.
    pub fn item(&self) -> f32 {
        self.inner.borrow().value.item()
    }

    /// A clone of the accumulated gradient, if any has been accumulated.
    pub fn grad(&self) -> Option<Tensor> {
        self.inner.borrow().grad.clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        self.inner.borrow_mut().grad = None;
    }

    /// Replaces the value in place (used by optimizers; shape must match).
    ///
    /// # Panics
    ///
    /// Panics if the new value has a different shape.
    pub fn set_value(&self, value: Tensor) {
        let mut n = self.inner.borrow_mut();
        assert_eq!(
            n.value.shape(),
            value.shape(),
            "set_value shape mismatch on Var {}",
            n.id
        );
        n.value = value;
    }

    /// Applies `f` to the value in place (used by optimizers).
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.inner.borrow_mut().value);
    }

    /// Adds `delta` into the accumulated gradient.
    pub fn accumulate_grad(&self, delta: &Tensor) {
        let mut n = self.inner.borrow_mut();
        if !n.requires_grad {
            return;
        }
        match &mut n.grad {
            Some(g) => g.add_assign(delta),
            None => n.grad = Some(delta.clone()),
        }
    }

    /// Returns a constant copy of this variable, cutting the gradient path.
    #[must_use]
    pub fn detach(&self) -> Var {
        Var::constant(self.value())
    }

    /// Runs reverse-mode differentiation from this variable.
    ///
    /// The seed gradient is a tensor of ones with this variable's shape, so
    /// calling `backward` on a scalar loss computes ordinary gradients.
    /// Gradients accumulate across calls until [`Var::zero_grad`].
    pub fn backward(&self) {
        let _span = dance_telemetry::hot_span!("autograd.backward");
        // Post-order DFS (iterative, to survive deep graphs).
        let mut topo: Vec<Var> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<(Var, bool)> = vec![(self.clone(), false)];
        while let Some((v, children_done)) = stack.pop() {
            let id = v.id();
            if children_done {
                topo.push(v);
                continue;
            }
            if !visited.insert(id) {
                continue;
            }
            if !v.requires_grad() {
                continue;
            }
            stack.push((v.clone(), true));
            let parents = v.inner.borrow().parents.clone();
            for p in parents {
                if !visited.contains(&p.id()) {
                    stack.push((p, false));
                }
            }
        }

        let ones = Tensor::ones(&self.shape());
        self.accumulate_grad(&ones);

        for v in topo.iter().rev() {
            let (grad, parents, has_backward) = {
                let n = v.inner.borrow();
                match (&n.grad, &n.backward) {
                    (Some(g), Some(_)) => (g.clone(), n.parents.clone(), true),
                    _ => (Tensor::default(), Vec::new(), false),
                }
            };
            if has_backward {
                let n = v.inner.borrow();
                if let Some(bw) = &n.backward {
                    if dance_telemetry::enabled() {
                        // analyze:allow(determinism) span timing only; never feeds values
                        let start = std::time::Instant::now();
                        bw(&grad, &parents);
                        dance_telemetry::span::record_duration_prefixed(
                            "autograd.bwd.",
                            n.op,
                            start.elapsed().as_nanos() as u64,
                        );
                    } else {
                        bw(&grad, &parents);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_requires_grad_constant_does_not() {
        let p = Var::parameter(Tensor::scalar(1.0));
        let c = Var::constant(Tensor::scalar(1.0));
        assert!(p.requires_grad());
        assert!(!c.requires_grad());
    }

    #[test]
    fn backward_on_identity_gives_ones() {
        let p = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        p.backward();
        assert_eq!(p.grad().unwrap().data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn grad_accumulates_until_zeroed() {
        let p = Var::parameter(Tensor::scalar(5.0));
        p.backward();
        p.backward();
        assert_eq!(p.grad().unwrap().item(), 2.0);
        p.zero_grad();
        assert!(p.grad().is_none());
    }

    #[test]
    fn constant_subgraph_is_pruned() {
        let a = Var::constant(Tensor::scalar(2.0));
        let b = a.mul(&a);
        assert!(!b.requires_grad());
        b.backward();
        assert!(a.grad().is_none());
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // y = x*x + x*x = 2x² ⇒ dy/dx = 4x
        let x = Var::parameter(Tensor::scalar(3.0));
        let a = x.mul(&x);
        let b = x.mul(&x);
        let y = a.add(&b);
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 12.0);
    }

    #[test]
    fn shared_parameter_across_two_graphs() {
        let x = Var::parameter(Tensor::scalar(2.0));
        let y1 = x.scale(3.0);
        y1.backward();
        assert_eq!(x.grad().unwrap().item(), 3.0);
        x.zero_grad();
        let y2 = x.mul(&x);
        y2.backward();
        assert_eq!(x.grad().unwrap().item(), 4.0);
    }

    #[test]
    fn detach_blocks_gradient() {
        let x = Var::parameter(Tensor::scalar(2.0));
        let y = x.detach().mul(&x); // only the non-detached path contributes
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 2.0);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let x = Var::parameter(Tensor::scalar(1.0));
        let mut y = x.clone();
        for _ in 0..5_000 {
            y = y.add_scalar(0.0);
        }
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 1.0);
    }
}
