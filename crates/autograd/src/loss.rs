//! Loss functions.
//!
//! Cross-entropy (with the label smoothing the paper uses for supernet
//! training), mean-squared error, and the MSRE loss of DANCE Eq. 2 — the
//! *mean squared relative error* that keeps small-latency accelerator
//! configurations from being drowned out by large-latency ones when training
//! the cost estimation network.

use crate::tensor::Tensor;
use crate::var::Var;

/// Softmax cross-entropy against integer class targets, with optional label
/// smoothing, averaged over the batch.
///
/// `logits` must be `[batch, classes]` and `targets.len() == batch`.
///
/// # Panics
///
/// Panics on shape mismatches or a target index out of range.
#[must_use]
pub fn cross_entropy(logits: &Var, targets: &[usize], label_smoothing: f32) -> Var {
    let logit_val = logits.value();
    assert_eq!(
        logit_val.ndim(),
        2,
        "cross_entropy logits shape {:?}",
        logit_val.shape()
    );
    let (b, c) = (logit_val.shape()[0], logit_val.shape()[1]);
    assert_eq!(
        targets.len(),
        b,
        "cross_entropy batch {} vs targets {}",
        b,
        targets.len()
    );
    for &t in targets {
        assert!(
            t < c,
            "cross_entropy target {t} out of range for {c} classes"
        );
    }
    // Smoothed target distribution: (1-ε) on the label + ε/C everywhere.
    let off = label_smoothing / c as f32;
    let on = 1.0 - label_smoothing + off;

    let soft = logit_val.softmax_rows();
    let mut loss = 0.0f32;
    for (i, &t) in targets.iter().enumerate() {
        for j in 0..c {
            let q = if j == t { on } else { off };
            if q > 0.0 {
                loss -= q * soft.at2(i, j).max(1e-20).ln();
            }
        }
    }
    loss /= b as f32;

    let targets: Vec<usize> = targets.to_vec();
    Var::from_op(
        "cross_entropy",
        Tensor::scalar(loss),
        vec![logits.clone()],
        Box::new(move |g, parents| {
            // dL/dz = (softmax − q) / B, scaled by upstream scalar gradient.
            let scale = g.item() / b as f32;
            let mut dz = soft.clone();
            for (i, &t) in targets.iter().enumerate() {
                for j in 0..c {
                    let q = if j == t { on } else { off };
                    dz.data_mut()[i * c + j] = (dz.data()[i * c + j] - q) * scale;
                }
            }
            parents[0].accumulate_grad(&dz);
        }),
    )
}

/// Mean squared error between `pred` and a constant `target`, averaged over
/// all elements.
///
/// # Panics
///
/// Panics if shapes differ.
#[must_use]
pub fn mse(pred: &Var, target: &Tensor) -> Var {
    let t = Var::constant(target.clone());
    pred.sub(&t).sqr().mean()
}

/// Mean squared *relative* error (DANCE Eq. 2): `mean((1 − ŷ/y)²)`.
///
/// `target` entries must be nonzero; they are clamped away from zero at
/// `1e-9` for numerical safety.
///
/// # Panics
///
/// Panics if shapes differ.
#[must_use]
pub fn msre(pred: &Var, target: &Tensor) -> Var {
    let inv = Var::constant(target.map(|y| 1.0 / y.abs().max(1e-9) * y.signum()));
    let ones = Var::constant(Tensor::ones(target.shape()));
    ones.sub(&pred.mul(&inv)).sqr().mean()
}

/// Fraction of rows whose argmax equals the target class.
///
/// # Panics
///
/// Panics if `logits` is not 2-D or lengths mismatch.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    let preds = logits.argmax_rows();
    assert_eq!(preds.len(), targets.len(), "accuracy length mismatch");
    if targets.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(targets).filter(|(p, t)| p == t).count();
    correct as f32 / targets.len() as f32
}

/// Sum of squared parameter norms — the `‖w‖` weight-decay term of Eq. 1.
#[must_use]
pub fn l2_penalty(params: &[Var]) -> Var {
    let mut acc: Option<Var> = None;
    for p in params {
        let term = p.sqr().sum();
        acc = Some(match acc {
            Some(a) => a.add(&term),
            None => term,
        });
    }
    acc.unwrap_or_else(|| Var::constant(Tensor::scalar(0.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::numeric_grad;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cross_entropy_perfect_prediction_is_small() {
        let logits = Var::constant(Tensor::from_vec(
            vec![20.0, 0.0, 0.0, 0.0, 20.0, 0.0],
            &[2, 3],
        ));
        let loss = cross_entropy(&logits, &[0, 1], 0.0);
        assert!(loss.item() < 1e-3, "loss {}", loss.item());
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Var::constant(Tensor::zeros(&[1, 4]));
        let loss = cross_entropy(&logits, &[2], 0.0);
        assert!((loss.item() - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_check() {
        let mut rng = StdRng::seed_from_u64(31);
        let logits = Var::parameter(Tensor::rand_normal(&[3, 5], 0.0, 1.0, &mut rng));
        numeric_grad(
            &[&logits],
            || cross_entropy(&logits, &[0, 3, 4], 0.0),
            1e-2,
            3e-2,
        );
    }

    #[test]
    fn cross_entropy_label_smoothing_grad_check() {
        let mut rng = StdRng::seed_from_u64(32);
        let logits = Var::parameter(Tensor::rand_normal(&[2, 4], 0.0, 1.0, &mut rng));
        numeric_grad(
            &[&logits],
            || cross_entropy(&logits, &[1, 2], 0.1),
            1e-2,
            3e-2,
        );
    }

    #[test]
    fn label_smoothing_raises_floor() {
        let logits = Var::constant(Tensor::from_vec(vec![50.0, 0.0, 0.0], &[1, 3]));
        let hard = cross_entropy(&logits, &[0], 0.0).item();
        let smooth = cross_entropy(&logits, &[0], 0.1).item();
        assert!(smooth > hard);
    }

    #[test]
    fn mse_zero_for_exact_match() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let p = Var::constant(t.clone());
        assert_eq!(mse(&p, &t).item(), 0.0);
    }

    #[test]
    fn msre_is_relative_not_absolute() {
        // Same absolute error (1.0), very different relative error.
        let small = msre(
            &Var::constant(Tensor::from_vec(vec![9.0], &[1])),
            &Tensor::from_vec(vec![8.0], &[1]),
        )
        .item();
        let large = msre(
            &Var::constant(Tensor::from_vec(vec![101.0], &[1])),
            &Tensor::from_vec(vec![100.0], &[1]),
        )
        .item();
        assert!(small > large * 50.0, "small {small} vs large {large}");
    }

    #[test]
    fn msre_grad_check() {
        let mut rng = StdRng::seed_from_u64(33);
        let p = Var::parameter(Tensor::rand_uniform(&[6], 0.5, 2.0, &mut rng));
        let t = Tensor::rand_uniform(&[6], 0.5, 2.0, &mut rng);
        numeric_grad(&[&p], || msre(&p, &t), 1e-3, 3e-2);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[1, 1, 0]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn l2_penalty_sums_squares() {
        let a = Var::parameter(Tensor::from_vec(vec![3.0], &[1]));
        let b = Var::parameter(Tensor::from_vec(vec![4.0], &[1]));
        let p = l2_penalty(&[a.clone(), b.clone()]);
        assert_eq!(p.item(), 25.0);
        p.backward();
        assert_eq!(a.grad().unwrap().item(), 6.0);
    }
}
