//! Heuristic hardware search: random sampling and hill climbing.
//!
//! The paper's space (4335 points) is small enough for the exact algorithms
//! in [`crate::exhaustive`]; these heuristics exist for two reasons. They
//! scale to spaces where enumeration stops being an option (more parameters,
//! finer grids), and they provide *quality anchors*: the evaluator network's
//! proposals can be compared against what a cheap heuristic finds with the
//! same number of cost evaluations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dance_accel::space::{DATAFLOW_CARDINALITY, PE_CARDINALITY, RF_CARDINALITY};
use dance_accel::workload::SlotChoice;
use dance_cost::metrics::CostFunction;

use crate::exhaustive::SearchResult;
use crate::table::CostTable;

/// Uniform random search: samples `budget` configurations and keeps the
/// best.
///
/// # Panics
///
/// Panics if `budget` is zero.
pub fn random_search(
    table: &CostTable,
    choices: &[SlotChoice],
    cost_fn: &CostFunction,
    budget: usize,
    seed: u64,
) -> SearchResult {
    assert!(budget > 0, "random search needs a positive budget");
    let mut rng = StdRng::seed_from_u64(seed);
    let space = table.space();
    let mut best: Option<SearchResult> = None;
    for _ in 0..budget {
        let idx = rng.gen_range(0..space.len());
        let cost = table.cost(choices, idx);
        let value = cost_fn.apply(&cost);
        if best.as_ref().map_or(true, |b| value < b.value) {
            best = Some(SearchResult {
                config: space.config_at(idx),
                config_index: idx,
                cost,
                value,
                evaluated: 0,
            });
        }
    }
    let mut r = best.expect("budget is positive");
    r.evaluated = budget;
    r
}

/// First-improvement hill climbing over the four head axes with random
/// restarts. Neighbours differ by ±1 step on one head (PE_X, PE_Y, RF index
/// or dataflow index).
///
/// # Panics
///
/// Panics if `restarts` is zero.
pub fn hill_climb(
    table: &CostTable,
    choices: &[SlotChoice],
    cost_fn: &CostFunction,
    restarts: usize,
    seed: u64,
) -> SearchResult {
    assert!(restarts > 0, "hill climbing needs at least one restart");
    let mut rng = StdRng::seed_from_u64(seed);
    let space = table.space();
    let mut evaluated = 0usize;
    let mut best: Option<SearchResult> = None;

    let eval = |heads: (usize, usize, usize, usize), evaluated: &mut usize| {
        let cfg = space.from_head_indices(heads.0, heads.1, heads.2, heads.3);
        let idx = space.index_of(&cfg);
        *evaluated += 1;
        let cost = table.cost(choices, idx);
        (cfg, idx, cost, cost_fn.apply(&cost))
    };

    for _ in 0..restarts {
        let mut heads = (
            rng.gen_range(0..PE_CARDINALITY),
            rng.gen_range(0..PE_CARDINALITY),
            rng.gen_range(0..RF_CARDINALITY),
            rng.gen_range(0..DATAFLOW_CARDINALITY),
        );
        let (mut cfg, mut idx, mut cost, mut value) = eval(heads, &mut evaluated);
        loop {
            let mut improved = false;
            let neighbours = neighbour_heads(heads);
            for nb in neighbours {
                let (ncfg, nidx, ncost, nvalue) = eval(nb, &mut evaluated);
                if nvalue < value {
                    heads = nb;
                    cfg = ncfg;
                    idx = nidx;
                    cost = ncost;
                    value = nvalue;
                    improved = true;
                    break;
                }
            }
            if !improved {
                break;
            }
        }
        if best.as_ref().map_or(true, |b| value < b.value) {
            best = Some(SearchResult {
                config: cfg,
                config_index: idx,
                cost,
                value,
                evaluated,
            });
        }
    }
    let mut r = best.expect("restarts is positive");
    r.evaluated = evaluated;
    r
}

/// All head tuples at Hamming-like distance one (±1 per axis, in range).
fn neighbour_heads(
    (px, py, rf, df): (usize, usize, usize, usize),
) -> Vec<(usize, usize, usize, usize)> {
    let mut out = Vec::with_capacity(8);
    let axis = |v: usize, max: usize| {
        let mut steps = Vec::with_capacity(2);
        if v > 0 {
            steps.push(v - 1);
        }
        if v + 1 < max {
            steps.push(v + 1);
        }
        steps
    };
    for v in axis(px, PE_CARDINALITY) {
        out.push((v, py, rf, df));
    }
    for v in axis(py, PE_CARDINALITY) {
        out.push((px, v, rf, df));
    }
    for v in axis(rf, RF_CARDINALITY) {
        out.push((px, py, v, df));
    }
    for v in axis(df, DATAFLOW_CARDINALITY) {
        out.push((px, py, rf, v));
    }
    out
}

/// Convenience: the relative optimality gap of a heuristic result against
/// the exact optimum, `(heuristic − optimal) / optimal` (0 = optimal).
pub fn optimality_gap(
    table: &CostTable,
    choices: &[SlotChoice],
    cost_fn: &CostFunction,
    result: &SearchResult,
) -> f64 {
    let (_, opt_cost) = table.optimal(choices, cost_fn);
    let opt = cost_fn.apply(&opt_cost);
    (result.value - opt) / opt
}

#[cfg(test)]
mod tests {
    use super::*;
    use dance_accel::space::HardwareSpace;
    use dance_accel::workload::NetworkTemplate;
    use dance_cost::model::CostModel;

    fn table() -> CostTable {
        CostTable::new(
            &NetworkTemplate::cifar10(),
            &CostModel::new(),
            &HardwareSpace::new(),
        )
    }

    fn choices() -> Vec<SlotChoice> {
        vec![
            SlotChoice::MbConv {
                kernel: 3,
                expand: 6
            };
            9
        ]
    }

    #[test]
    fn random_search_improves_with_budget() {
        let t = table();
        let cf = CostFunction::Edap;
        let small = random_search(&t, &choices(), &cf, 5, 1);
        let large = random_search(&t, &choices(), &cf, 500, 1);
        assert!(large.value <= small.value);
        assert_eq!(large.evaluated, 500);
    }

    #[test]
    fn random_search_with_full_budget_is_near_optimal() {
        let t = table();
        let cf = CostFunction::Edap;
        let r = random_search(&t, &choices(), &cf, 2_000, 2);
        let gap = optimality_gap(&t, &choices(), &cf, &r);
        assert!(gap < 0.5, "2000 random samples land {gap:.2} above optimum");
    }

    #[test]
    fn hill_climb_beats_its_own_starting_points() {
        let t = table();
        let cf = CostFunction::Edap;
        let hc = hill_climb(&t, &choices(), &cf, 4, 3);
        let rnd = random_search(&t, &choices(), &cf, 4, 3);
        // Same number of restarts as random samples: climbing must not lose.
        assert!(hc.value <= rnd.value);
    }

    #[test]
    fn hill_climb_reaches_small_optimality_gap() {
        let t = table();
        let cf = CostFunction::Edap;
        let hc = hill_climb(&t, &choices(), &cf, 8, 4);
        let gap = optimality_gap(&t, &choices(), &cf, &hc);
        assert!(gap < 0.25, "hill climbing stuck {gap:.2} above optimum");
        assert!(
            hc.evaluated < t.space().len(),
            "hill climbing evaluated the whole space"
        );
    }

    #[test]
    fn neighbours_respect_bounds() {
        let corner = neighbour_heads((0, 16, 0, 2));
        assert!(corner.iter().all(|&(px, py, rf, df)| {
            px < PE_CARDINALITY
                && py < PE_CARDINALITY
                && rf < RF_CARDINALITY
                && df < DATAFLOW_CARDINALITY
        }));
        // Interior point has the full 8 neighbours.
        assert_eq!(neighbour_heads((5, 5, 2, 1)).len(), 8);
    }

    #[test]
    fn optimality_gap_of_exact_optimum_is_zero() {
        let t = table();
        let cf = CostFunction::Edap;
        let (idx, cost) = t.optimal(&choices(), &cf);
        let exact = SearchResult {
            config: t.space().config_at(idx),
            config_index: idx,
            cost,
            value: cf.apply(&cost),
            evaluated: t.space().len(),
        };
        assert!(optimality_gap(&t, &choices(), &cf, &exact).abs() < 1e-12);
    }
}
