//! Precomputed per-slot cost tables.
//!
//! The hardware generation tool has to price *every* (architecture,
//! accelerator) pair: exhaustive search alone touches all 4335 configs, and
//! evaluator-network training needs millions of ground-truth cases. The key
//! observation is that network cost is additive over layers and the layers
//! contributed by a slot depend only on `(slot, choice)` — 9 × 7 = 63
//! possibilities plus the fixed stem/head. Pricing each of those once per
//! configuration turns a whole-space exhaustive search into ~4335 × 10
//! additions.

use std::sync::Arc;

use dance_accel::space::HardwareSpace;
use dance_accel::workload::{Network, NetworkTemplate, SlotChoice};
use dance_cost::metrics::CostFunction;
use dance_cost::model::{CostModel, Detail, HardwareCost, CLOCK_GHZ};

/// Configurations priced per backend-pool chunk while building a table.
///
/// Fixed (never derived from the thread count) so the chunk decomposition —
/// and therefore the assembled table — is identical at any `DANCE_THREADS`.
const CFG_CHUNK: usize = 64;

/// Latency (cycles) and energy (pJ) of a group of layers on one config.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct PartialCost {
    cycles: u64,
    energy_pj: f64,
}

/// Precomputed costs of every `(slot, choice)` pair and the fixed stem/head
/// on every configuration of a [`HardwareSpace`].
#[derive(Debug, Clone)]
pub struct CostTable {
    template: NetworkTemplate,
    space: HardwareSpace,
    /// `fixed[cfg]`: stem + head cost.
    fixed: Vec<PartialCost>,
    /// `slot_costs[cfg][slot * 7 + choice]`.
    slot_costs: Vec<Vec<PartialCost>>,
    /// `area[cfg]` in mm².
    area: Vec<f64>,
}

impl CostTable {
    /// Prices the whole template × space cross product once.
    ///
    /// This is the expensive constructor (≈1 M layer mappings for the paper
    /// space); everything afterwards is table lookups.
    pub fn new(template: &NetworkTemplate, model: &CostModel, space: &HardwareSpace) -> Self {
        let _span = dance_telemetry::span!("cost_table.build");
        let n_cfg = space.len();
        let n_slots = template.num_slots();
        let n_choices = SlotChoice::CANDIDATES.len();

        // Pre-expand layer lists once. Stem + head are recovered from the
        // all-Zero network by stripping the per-slot adapter layers.
        let fixed_layers: Vec<_> = {
            let zero_net = template.instantiate(&vec![SlotChoice::Zero; n_slots]);
            let adapter_count: usize = template
                .slots()
                .iter()
                .filter(|s| !s.is_identity_compatible())
                .map(|s| s.layers(SlotChoice::Zero).len())
                .sum();
            let total = zero_net.layers().len();
            // Stem layers come first, then slot adapters in order, then head.
            // We rebuild stem/head by removing the adapter layers.
            let mut layers = zero_net.layers().to_vec();
            let stem_len = total - adapter_count - 1; // head is 1 layer in both templates
            let head = layers.split_off(total - 1);
            let stem = layers[..stem_len].to_vec();
            let mut v = stem;
            v.extend(head);
            v
        };
        let slot_layer_lists: Vec<Vec<_>> = template
            .slots()
            .iter()
            .flat_map(|slot| {
                SlotChoice::CANDIDATES
                    .iter()
                    .map(move |&choice| slot.layers(choice))
            })
            .collect();

        // Price configuration chunks on the backend pool. Each chunk covers a
        // fixed index range and every per-config value is a pure function of
        // its `cfg_idx`, so reassembling the chunks in index order yields the
        // exact vectors the old sequential loop produced.
        let fixed_layers = Arc::new(fixed_layers);
        let slot_layer_lists = Arc::new(slot_layer_lists);
        let n_chunks = n_cfg.div_ceil(CFG_CHUNK).max(1);
        let (model, space) = (*model, *space);
        let parts = dance_backend::run(n_chunks, move |chunk_idx| {
            let start = chunk_idx * CFG_CHUNK;
            let end = (start + CFG_CHUNK).min(n_cfg);
            let mut fixed = Vec::with_capacity(end - start);
            let mut slot_costs = Vec::with_capacity(end - start);
            let mut area = Vec::with_capacity(end - start);
            for cfg_idx in start..end {
                let cfg = space.config_at(cfg_idx);
                let price = |layers: &[dance_accel::layer::ConvLayer]| {
                    let mut p = PartialCost::default();
                    for layer in layers {
                        let lc = model.evaluate_layer(layer, &cfg);
                        p.cycles += lc.cycles;
                        p.energy_pj += lc.energy_pj;
                    }
                    p
                };
                fixed.push(price(&fixed_layers));
                let per_slot: Vec<PartialCost> = slot_layer_lists
                    .iter()
                    .map(|layers| price(layers))
                    .collect();
                assert_eq!(per_slot.len(), n_slots * n_choices);
                slot_costs.push(per_slot);
                area.push(dance_cost::area::area_mm2(&cfg));
            }
            (fixed, slot_costs, area)
        });

        let mut fixed = Vec::with_capacity(n_cfg);
        let mut slot_costs = Vec::with_capacity(n_cfg);
        let mut area = Vec::with_capacity(n_cfg);
        for (f, s, a) in parts {
            fixed.extend(f);
            slot_costs.extend(s);
            area.extend(a);
        }

        Self {
            template: template.clone(),
            space,
            fixed,
            slot_costs,
            area,
        }
    }

    /// The template this table was built for.
    pub fn template(&self) -> &NetworkTemplate {
        &self.template
    }

    /// The hardware space this table covers.
    pub fn space(&self) -> &HardwareSpace {
        &self.space
    }

    /// Cost of an architecture on the configuration at `cfg_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `choices` has the wrong length or `cfg_idx` is out of range.
    pub fn cost(&self, choices: &[SlotChoice], cfg_idx: usize) -> HardwareCost {
        assert_eq!(
            choices.len(),
            self.template.num_slots(),
            "slot choice count"
        );
        let n_choices = SlotChoice::CANDIDATES.len();
        let mut cycles = self.fixed[cfg_idx].cycles;
        let mut energy = self.fixed[cfg_idx].energy_pj;
        for (slot, &choice) in choices.iter().enumerate() {
            let p = self.slot_costs[cfg_idx][slot * n_choices + choice.index()];
            cycles += p.cycles;
            energy += p.energy_pj;
        }
        HardwareCost {
            latency_ms: cycles as f64 / (CLOCK_GHZ * 1e9) * 1e3,
            energy_mj: energy * 1e-9,
            area_mm2: self.area[cfg_idx],
        }
    }

    /// Expected cost of a *soft* architecture: per-slot probability vectors
    /// over the 7 candidates (rows of `probs`, each summing to ~1).
    ///
    /// This is what a differentiable relaxation of the workload looks like to
    /// the cost toolchain and is used to generate smoothed training data.
    ///
    /// # Panics
    ///
    /// Panics if `probs` has the wrong shape.
    pub fn soft_cost(&self, probs: &[Vec<f32>], cfg_idx: usize) -> HardwareCost {
        assert_eq!(probs.len(), self.template.num_slots(), "slot prob count");
        let n_choices = SlotChoice::CANDIDATES.len();
        let mut cycles = self.fixed[cfg_idx].cycles as f64;
        let mut energy = self.fixed[cfg_idx].energy_pj;
        for (slot, p_row) in probs.iter().enumerate() {
            assert_eq!(p_row.len(), n_choices, "slot {slot} prob width");
            for (choice, &p) in p_row.iter().enumerate() {
                let pc = self.slot_costs[cfg_idx][slot * n_choices + choice];
                cycles += p as f64 * pc.cycles as f64;
                energy += p as f64 * pc.energy_pj;
            }
        }
        HardwareCost {
            latency_ms: cycles / (CLOCK_GHZ * 1e9) * 1e3,
            energy_mj: energy * 1e-9,
            area_mm2: self.area[cfg_idx],
        }
    }

    /// The soft cost at `cfg_idx` as an explicit linear function of the
    /// per-slot choice probabilities, in final metric units.
    ///
    /// Returns `(fixed, per_slot)` where `fixed` is
    /// `[latency_ms, energy_mj, area_mm2]` of the stem/head (area is
    /// constant per configuration) and `per_slot[slot][choice]` is the
    /// `[latency_ms, energy_mj]` contribution of assigning `choice` to
    /// `slot`. Because [`CostTable::soft_cost`] is linear in the
    /// probabilities at a fixed configuration, `fixed + Σ_s p_s · w_s`
    /// reproduces it exactly — this is what `dance-guard` builds its
    /// differentiable analytical fallback from when the learned cost net
    /// degrades.
    ///
    /// # Panics
    ///
    /// Panics if `cfg_idx` is out of range.
    pub fn linear_surrogate(&self, cfg_idx: usize) -> ([f64; 3], Vec<Vec<[f64; 2]>>) {
        let n_choices = SlotChoice::CANDIDATES.len();
        let to_ms = |cycles: f64| cycles / (CLOCK_GHZ * 1e9) * 1e3;
        let fixed = [
            to_ms(self.fixed[cfg_idx].cycles as f64),
            self.fixed[cfg_idx].energy_pj * 1e-9,
            self.area[cfg_idx],
        ];
        let per_slot = (0..self.template.num_slots())
            .map(|slot| {
                (0..n_choices)
                    .map(|choice| {
                        let pc = self.slot_costs[cfg_idx][slot * n_choices + choice];
                        [to_ms(pc.cycles as f64), pc.energy_pj * 1e-9]
                    })
                    .collect()
            })
            .collect();
        (fixed, per_slot)
    }

    /// The exact network cost via the full model (no table) — used to verify
    /// table consistency.
    pub fn cost_direct(
        &self,
        model: &CostModel,
        choices: &[SlotChoice],
        cfg_idx: usize,
    ) -> HardwareCost {
        cost_direct(&self.template, model, &self.space, choices, cfg_idx)
    }

    /// Scans the whole space for the configuration minimizing `cost_fn`,
    /// returning `(config index, its cost)`.
    pub fn optimal(&self, choices: &[SlotChoice], cost_fn: &CostFunction) -> (usize, HardwareCost) {
        let mut best_idx = 0;
        let mut best_val = f64::INFINITY;
        let mut best_cost = HardwareCost::default();
        for cfg_idx in 0..self.space.len() {
            let c = self.cost(choices, cfg_idx);
            let v = cost_fn.apply(&c);
            if v < best_val {
                best_val = v;
                best_idx = cfg_idx;
                best_cost = c;
            }
        }
        (best_idx, best_cost)
    }
}

/// Exact cost of one discrete `(architecture, configuration)` pair straight
/// through the analytical model — no table required.
///
/// This is the table-free core of [`CostTable::cost_direct`], split out so
/// callers that never amortize over the whole space (notably the
/// `cost/analytic` endpoint in `dance-serve`) can price a single pair
/// without paying the `CostTable::new` precomputation.
pub fn cost_direct(
    template: &NetworkTemplate,
    model: &CostModel,
    space: &HardwareSpace,
    choices: &[SlotChoice],
    cfg_idx: usize,
) -> HardwareCost {
    let net: Network = template.instantiate(choices);
    model
        .evaluate(&net, &space.config_at(cfg_idx), Detail::Totals)
        .total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn table() -> CostTable {
        CostTable::new(
            &NetworkTemplate::cifar10(),
            &CostModel::new(),
            &HardwareSpace::new(),
        )
    }

    #[test]
    fn table_matches_direct_evaluation() {
        let t = table();
        let model = CostModel::new();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let choices: Vec<SlotChoice> = (0..9)
                .map(|_| SlotChoice::from_index(rng.gen_range(0..7)))
                .collect();
            let cfg_idx = rng.gen_range(0..t.space().len());
            let via_table = t.cost(&choices, cfg_idx);
            let direct = t.cost_direct(&model, &choices, cfg_idx);
            assert!(
                (via_table.latency_ms - direct.latency_ms).abs() < 1e-9,
                "latency {} vs {}",
                via_table.latency_ms,
                direct.latency_ms
            );
            assert!((via_table.energy_mj - direct.energy_mj).abs() < 1e-9);
            assert_eq!(via_table.area_mm2, direct.area_mm2);
        }
    }

    #[test]
    fn soft_cost_with_one_hot_equals_hard_cost() {
        let t = table();
        let choices = vec![
            SlotChoice::MbConv {
                kernel: 5,
                expand: 3
            };
            9
        ];
        let probs: Vec<Vec<f32>> = choices
            .iter()
            .map(|c| {
                let mut row = vec![0.0f32; 7];
                row[c.index()] = 1.0;
                row
            })
            .collect();
        let hard = t.cost(&choices, 777);
        let soft = t.soft_cost(&probs, 777);
        assert!((hard.latency_ms - soft.latency_ms).abs() < 1e-6);
        assert!((hard.energy_mj - soft.energy_mj).abs() < 1e-6);
    }

    #[test]
    fn linear_surrogate_reproduces_soft_cost() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(9);
        let (fixed, per_slot) = t.linear_surrogate(777);
        for _ in 0..5 {
            let probs: Vec<Vec<f32>> = (0..9)
                .map(|_| {
                    let raw: Vec<f32> = (0..7).map(|_| rng.gen_range(0.01f32..1.0)).collect();
                    let sum: f32 = raw.iter().sum();
                    raw.iter().map(|v| v / sum).collect()
                })
                .collect();
            let direct = t.soft_cost(&probs, 777);
            let mut lat = fixed[0];
            let mut energy = fixed[1];
            for (row, weights) in probs.iter().zip(&per_slot) {
                for (&p, w) in row.iter().zip(weights) {
                    lat += f64::from(p) * w[0];
                    energy += f64::from(p) * w[1];
                }
            }
            assert!((lat - direct.latency_ms).abs() < 1e-9 * direct.latency_ms.max(1.0));
            assert!((energy - direct.energy_mj).abs() < 1e-9 * direct.energy_mj.max(1.0));
            assert_eq!(fixed[2], direct.area_mm2);
        }
    }

    #[test]
    fn optimal_is_global_minimum() {
        let t = table();
        let choices = vec![
            SlotChoice::MbConv {
                kernel: 3,
                expand: 6
            };
            9
        ];
        let cf = CostFunction::Edap;
        let (best_idx, best_cost) = t.optimal(&choices, &cf);
        let best_val = cf.apply(&best_cost);
        // Spot-check against a stride through the space.
        for i in (0..t.space().len()).step_by(13) {
            assert!(cf.apply(&t.cost(&choices, i)) >= best_val - 1e-12);
        }
        assert_eq!(cf.apply(&t.cost(&choices, best_idx)), best_val);
    }
}
