#![warn(missing_docs)]

//! # dance-hwgen
//!
//! The exact hardware generation tool of the DANCE reproduction (Choi et
//! al., DAC 2021, §3.3): exhaustive and branch-and-bound search over the
//! hardware space, a precomputed [`table::CostTable`] that makes those
//! searches (and million-sample ground-truth generation) cheap, and the
//! [`dataset`] generators that produce training data for the evaluator
//! networks.
//!
//! ```
//! use dance_accel::prelude::*;
//! use dance_cost::prelude::*;
//! use dance_hwgen::prelude::*;
//!
//! let template = NetworkTemplate::cifar10();
//! let table = CostTable::new(&template, &CostModel::new(), &HardwareSpace::new());
//! let choices = [SlotChoice::MbConv { kernel: 3, expand: 6 }; 9];
//! let result = exhaustive_search_table(&table, &choices, &CostFunction::Edap);
//! assert!(result.cost.edap() > 0.0);
//! ```

pub mod dataset;
pub mod exhaustive;
pub mod heuristic;
pub mod table;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::dataset::{
        arch_encoded_width, decode_choices, encode_choices, generate_cost_dataset,
        generate_hwgen_dataset, metric_means, random_choices, split, CostSample, HwGenSample,
        HwSampling, CHOICES_PER_SLOT,
    };
    pub use crate::exhaustive::{
        branch_and_bound, exhaustive_search, exhaustive_search_table, SearchResult,
    };
    pub use crate::heuristic::{hill_climb, optimality_gap, random_search};
    pub use crate::table::CostTable;
}
