//! Ground-truth dataset generation for the evaluator networks (paper §3.3).
//!
//! "We generate random networks within the network architecture space A as
//! inputs, and the output of the toolchain will become ground-truth for
//! training the components for evaluator network."
//!
//! The architecture encoding contract shared with `dance-nas`: a network is
//! the concatenation of one per-slot block of
//! [`dance_accel::workload::SlotChoice::CANDIDATES`]-ordered probabilities
//! (one-hot for discrete networks), slot-major — 9 × 7 = 63 values for the
//! paper backbones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dance_accel::workload::SlotChoice;
use dance_cost::metrics::CostFunction;

use crate::table::CostTable;

/// Number of candidates per slot (7 for the paper space).
pub const CHOICES_PER_SLOT: usize = SlotChoice::CANDIDATES.len();

/// Width of the architecture encoding for a template with `num_slots` slots.
pub fn arch_encoded_width(num_slots: usize) -> usize {
    num_slots * CHOICES_PER_SLOT
}

/// One-hot encodes a discrete architecture (slot-major).
pub fn encode_choices(choices: &[SlotChoice]) -> Vec<f32> {
    let mut v = vec![0.0; arch_encoded_width(choices.len())];
    for (slot, choice) in choices.iter().enumerate() {
        v[slot * CHOICES_PER_SLOT + choice.index()] = 1.0;
    }
    v
}

/// Decodes an architecture encoding (possibly soft) by per-slot argmax.
///
/// # Panics
///
/// Panics if the encoding length is not a multiple of [`CHOICES_PER_SLOT`].
pub fn decode_choices(encoding: &[f32]) -> Vec<SlotChoice> {
    assert_eq!(
        encoding.len() % CHOICES_PER_SLOT,
        0,
        "encoding length {} not a multiple of {CHOICES_PER_SLOT}",
        encoding.len()
    );
    encoding
        .chunks(CHOICES_PER_SLOT)
        .map(|row| {
            let idx = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            SlotChoice::from_index(idx)
        })
        .collect()
}

/// Samples a uniformly random discrete architecture.
pub fn random_choices(num_slots: usize, rng: &mut StdRng) -> Vec<SlotChoice> {
    (0..num_slots)
        .map(|_| SlotChoice::from_index(rng.gen_range(0..CHOICES_PER_SLOT)))
        .collect()
}

/// Training sample for the hardware generation network: architecture → the
/// categorical indices of the optimal configuration's four heads.
#[derive(Debug, Clone, PartialEq)]
pub struct HwGenSample {
    /// Architecture encoding (one-hot, slot-major).
    pub arch: Vec<f32>,
    /// Target `(PE_X, PE_Y, RF, dataflow)` head indices.
    pub heads: (usize, usize, usize, usize),
}

/// Training sample for the cost estimation network.
#[derive(Debug, Clone, PartialEq)]
pub struct CostSample {
    /// Architecture encoding (one-hot, slot-major).
    pub arch: Vec<f32>,
    /// Hardware one-hot encoding (width 42).
    pub hw: Vec<f32>,
    /// Ground-truth `[latency_ms, energy_mj, area_mm2]`.
    pub metrics: [f32; 3],
}

/// How the hardware side of a [`CostSample`] is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwSampling {
    /// Uniformly random configuration — trains the *with feature
    /// forwarding* cost network, which receives an explicit design.
    Random,
    /// The optimal configuration under a cost function — trains the
    /// *without feature forwarding* network, which must internally model
    /// the hardware generation step.
    Optimal,
    /// Half random, half optimal configurations: dense coverage of the
    /// whole space *and* of the optimal-hardware manifold the search
    /// actually visits — used for the *with feature forwarding* network.
    Mixed,
}

/// Generates `n` hardware-generation samples, in parallel.
pub fn generate_hwgen_dataset(
    table: &CostTable,
    cost_fn: &CostFunction,
    n: usize,
    seed: u64,
) -> Vec<HwGenSample> {
    let _span = dance_telemetry::span!("hwgen.dataset.generate");
    dance_telemetry::counter!("hwgen.samples", n as u64);
    // The pool wants `'static` jobs; share one snapshot of the table.
    let table = std::sync::Arc::new(table.clone());
    let cost_fn = *cost_fn;
    parallel_generate(n, seed, move |rng| {
        let choices = random_choices(table.template().num_slots(), rng);
        let (idx, _) = table.optimal(&choices, &cost_fn);
        let config = table.space().config_at(idx);
        HwGenSample {
            arch: encode_choices(&choices),
            heads: table.space().head_indices(&config),
        }
    })
}

/// Generates `n` cost-estimation samples, in parallel.
pub fn generate_cost_dataset(
    table: &CostTable,
    cost_fn: &CostFunction,
    sampling: HwSampling,
    n: usize,
    seed: u64,
) -> Vec<CostSample> {
    let _span = dance_telemetry::span!("cost.dataset.generate");
    dance_telemetry::counter!("cost.samples", n as u64);
    // The pool wants `'static` jobs; share one snapshot of the table.
    let table = std::sync::Arc::new(table.clone());
    let cost_fn = *cost_fn;
    parallel_generate(n, seed, move |rng| {
        let choices = random_choices(table.template().num_slots(), rng);
        let cfg_idx = match sampling {
            HwSampling::Random => rng.gen_range(0..table.space().len()),
            HwSampling::Optimal => table.optimal(&choices, &cost_fn).0,
            HwSampling::Mixed => {
                if rng.gen_bool(0.5) {
                    rng.gen_range(0..table.space().len())
                } else {
                    table.optimal(&choices, &cost_fn).0
                }
            }
        };
        let cost = table.cost(&choices, cfg_idx);
        CostSample {
            arch: encode_choices(&choices),
            hw: table
                .space()
                .encode_one_hot(&table.space().config_at(cfg_idx)),
            metrics: [
                cost.latency_ms as f32,
                cost.energy_mj as f32,
                cost.area_mm2 as f32,
            ],
        }
    })
}

/// Splits a dataset into `(train, validation)` at `train_frac`.
///
/// # Panics
///
/// Panics if `train_frac` is outside `(0, 1)`.
pub fn split<T: Clone>(data: &[T], train_frac: f64) -> (Vec<T>, Vec<T>) {
    assert!(
        train_frac > 0.0 && train_frac < 1.0,
        "train fraction {train_frac} must be in (0, 1)"
    );
    let cut = ((data.len() as f64) * train_frac).round() as usize;
    (data[..cut].to_vec(), data[cut..].to_vec())
}

/// Mean of each metric over a cost dataset (for normalization).
pub fn metric_means(data: &[CostSample]) -> [f32; 3] {
    let mut sums = [0.0f64; 3];
    for s in data {
        for (acc, &m) in sums.iter_mut().zip(s.metrics.iter()) {
            *acc += m as f64;
        }
    }
    let n = data.len().max(1) as f64;
    [
        (sums[0] / n) as f32,
        (sums[1] / n) as f32,
        (sums[2] / n) as f32,
    ]
}

/// Samples produced per backend-pool chunk.
///
/// Fixed (never derived from the thread count); combined with per-index RNG
/// seeding this makes generation bit-identical at any `DANCE_THREADS`.
const SAMPLE_CHUNK: usize = 64;

/// Runs `make` across the backend worker pool, preserving determinism:
/// sample `i` is always produced from the RNG stream seeded by `(seed, i)`,
/// and chunks are reassembled in index order.
fn parallel_generate<T, F>(n: usize, seed: u64, make: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(&mut StdRng) -> T + Send + Sync + 'static,
{
    if n == 0 {
        return Vec::new();
    }
    let n_chunks = n.div_ceil(SAMPLE_CHUNK);
    let parts = dance_backend::run(n_chunks, move |chunk_idx| {
        let start = chunk_idx * SAMPLE_CHUNK;
        let end = (start + SAMPLE_CHUNK).min(n);
        (start..end)
            .map(|i| {
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                make(&mut rng)
            })
            .collect::<Vec<T>>()
    });
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dance_accel::space::HardwareSpace;
    use dance_accel::workload::NetworkTemplate;
    use dance_cost::model::CostModel;

    fn table() -> CostTable {
        CostTable::new(
            &NetworkTemplate::cifar10(),
            &CostModel::new(),
            &HardwareSpace::new(),
        )
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let c = random_choices(9, &mut rng);
            assert_eq!(decode_choices(&encode_choices(&c)), c);
        }
    }

    #[test]
    fn encoding_is_one_hot_per_slot() {
        let c = vec![SlotChoice::Zero; 9];
        let e = encode_choices(&c);
        assert_eq!(e.len(), 63);
        assert_eq!(e.iter().sum::<f32>(), 9.0);
    }

    #[test]
    fn hwgen_dataset_targets_are_optimal() {
        let t = table();
        let data = generate_hwgen_dataset(&t, &CostFunction::Edap, 8, 7);
        assert_eq!(data.len(), 8);
        for s in &data {
            let choices = decode_choices(&s.arch);
            let (idx, _) = t.optimal(&choices, &CostFunction::Edap);
            assert_eq!(s.heads, t.space().head_indices(&t.space().config_at(idx)));
        }
    }

    #[test]
    fn cost_dataset_metrics_match_table() {
        let t = table();
        let data = generate_cost_dataset(&t, &CostFunction::Edap, HwSampling::Random, 8, 9);
        for s in &data {
            let choices = decode_choices(&s.arch);
            let cfg = t.space().decode_one_hot(&s.hw);
            let cost = t.cost(&choices, t.space().index_of(&cfg));
            assert!((s.metrics[0] - cost.latency_ms as f32).abs() < 1e-5);
            assert!((s.metrics[1] - cost.energy_mj as f32).abs() < 1e-5);
            assert!((s.metrics[2] - cost.area_mm2 as f32).abs() < 1e-5);
        }
    }

    #[test]
    fn optimal_sampling_yields_optimal_hw() {
        let t = table();
        let cf = CostFunction::Edap;
        let data = generate_cost_dataset(&t, &cf, HwSampling::Optimal, 5, 11);
        for s in &data {
            let choices = decode_choices(&s.arch);
            let (idx, _) = t.optimal(&choices, &cf);
            assert_eq!(t.space().decode_one_hot(&s.hw), t.space().config_at(idx));
        }
    }

    #[test]
    fn mixed_sampling_contains_both_kinds() {
        let t = table();
        let cf = CostFunction::Edap;
        let data = generate_cost_dataset(&t, &cf, HwSampling::Mixed, 40, 13);
        let mut optimal = 0;
        for s in &data {
            let choices = decode_choices(&s.arch);
            let (idx, _) = t.optimal(&choices, &cf);
            if t.space().decode_one_hot(&s.hw) == t.space().config_at(idx) {
                optimal += 1;
            }
        }
        // Roughly half the samples sit at the optimum; require both kinds.
        assert!(optimal >= 8, "too few optimal samples: {optimal}/40");
        assert!(optimal <= 32, "too few random samples: {}/40", 40 - optimal);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let t = table();
        let a = generate_hwgen_dataset(&t, &CostFunction::Edap, 16, 5);
        let b = generate_hwgen_dataset(&t, &CostFunction::Edap, 16, 5);
        assert_eq!(a, b);
        let c = generate_hwgen_dataset(&t, &CostFunction::Edap, 16, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn split_fractions() {
        let data: Vec<u32> = (0..10).collect();
        let (tr, va) = split(&data, 0.8);
        assert_eq!(tr.len(), 8);
        assert_eq!(va.len(), 2);
    }

    #[test]
    fn metric_means_are_averages() {
        let samples = vec![
            CostSample {
                arch: vec![],
                hw: vec![],
                metrics: [1.0, 2.0, 3.0],
            },
            CostSample {
                arch: vec![],
                hw: vec![],
                metrics: [3.0, 4.0, 5.0],
            },
        ];
        assert_eq!(metric_means(&samples), [2.0, 3.0, 4.0]);
    }
}
