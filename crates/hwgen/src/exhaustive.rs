//! The exact hardware generation tool (paper §3.3).
//!
//! "In general, the hardware generation tool is composed as an outer loop
//! enclosing the cost estimation tool. By using exact algorithms such as
//! exhaustive search or branch-and-bound algorithms, it outputs the optimal
//! solution for the given network architecture, within the hardware search
//! space H." Both exact algorithms are provided; they agree on the optimum
//! and branch-and-bound merely prunes work.

use dance_accel::config::AcceleratorConfig;
use dance_accel::space::HardwareSpace;
use dance_accel::workload::{Network, SlotChoice};
use dance_cost::metrics::CostFunction;
use dance_cost::model::{CostModel, Detail, HardwareCost};

use crate::table::CostTable;

/// Result of an exact hardware search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// The optimal configuration.
    pub config: AcceleratorConfig,
    /// Its canonical index in the space.
    pub config_index: usize,
    /// The metrics at the optimum.
    pub cost: HardwareCost,
    /// The scalar cost value at the optimum.
    pub value: f64,
    /// How many configurations were fully evaluated.
    pub evaluated: usize,
}

/// Exhaustive search over an arbitrary [`Network`] (no table needed).
///
/// This is the general-purpose path: it prices every configuration in the
/// space with the full cost model.
pub fn exhaustive_search(
    network: &Network,
    space: &HardwareSpace,
    model: &CostModel,
    cost_fn: &CostFunction,
) -> SearchResult {
    let mut best: Option<SearchResult> = None;
    for (idx, config) in space.iter().enumerate() {
        let cost = model.evaluate(network, &config, Detail::Totals).total;
        let value = cost_fn.apply(&cost);
        if best.as_ref().map_or(true, |b| value < b.value) {
            best = Some(SearchResult {
                config,
                config_index: idx,
                cost,
                value,
                evaluated: 0,
            });
        }
    }
    let mut r = best.expect("hardware space is never empty");
    r.evaluated = space.len();
    r
}

/// Exhaustive search accelerated by a precomputed [`CostTable`].
pub fn exhaustive_search_table(
    table: &CostTable,
    choices: &[SlotChoice],
    cost_fn: &CostFunction,
) -> SearchResult {
    let (idx, cost) = table.optimal(choices, cost_fn);
    SearchResult {
        config: table.space().config_at(idx),
        config_index: idx,
        cost,
        value: cost_fn.apply(&cost),
        evaluated: table.space().len(),
    }
}

/// Branch-and-bound exact search.
///
/// Configurations are visited in ascending order of an *admissible lower
/// bound* (compute-bound latency at full utilization, compulsory-traffic
/// energy, exact area); a configuration whose bound already exceeds the
/// incumbent cannot contain the optimum and is pruned. Returns the same
/// optimum as [`exhaustive_search`], with `evaluated` counting only the
/// configurations that were fully priced.
pub fn branch_and_bound(
    network: &Network,
    space: &HardwareSpace,
    model: &CostModel,
    cost_fn: &CostFunction,
) -> SearchResult {
    use dance_cost::energy::{
        rf_access_pj, DRAM_PJ, LEAKAGE_PJ_PER_CYCLE_PER_PE, MAC_PJ, RF_ACCESSES_PER_MAC, SRAM_PJ,
    };
    use dance_cost::mapping::DRAM_WORDS_PER_CYCLE;
    use dance_cost::model::CLOCK_GHZ;

    let macs: u64 = network.layers().iter().map(|l| l.macs()).sum();
    // Every word of every tensor crosses SRAM and DRAM at least once.
    let compulsory: u64 = network
        .layers()
        .iter()
        .map(|l| l.weight_words() + l.input_words() + l.output_words())
        .sum();

    // Admissible lower bounds per configuration: latency at 100% utilization
    // bounded below also by compulsory memory traffic; energy counting MACs,
    // minimal RF traffic, compulsory SRAM/DRAM words and leakage over the
    // latency bound; exact area.
    let bound = |cfg: &AcceleratorConfig| -> f64 {
        let pes = cfg.num_pes() as f64;
        let cycles_lb = (macs as f64 / pes)
            .max(compulsory as f64 / (cfg.pe_x() + cfg.pe_y()) as f64)
            .max(compulsory as f64 / DRAM_WORDS_PER_CYCLE);
        let lat_lb = cycles_lb / (CLOCK_GHZ * 1e9) * 1e3;
        let energy_lb = (macs as f64
            * (MAC_PJ + RF_ACCESSES_PER_MAC * rf_access_pj(cfg.rf_size()))
            + compulsory as f64 * (SRAM_PJ + DRAM_PJ)
            + cycles_lb * pes * LEAKAGE_PJ_PER_CYCLE_PER_PE)
            * 1e-9;
        let area = dance_cost::area::area_mm2(cfg);
        cost_fn.apply(&HardwareCost {
            latency_ms: lat_lb,
            energy_mj: energy_lb,
            area_mm2: area,
        })
    };

    // Visit in bound order so the incumbent tightens quickly.
    let mut order: Vec<(usize, f64)> = (0..space.len())
        .map(|i| (i, bound(&space.config_at(i))))
        .collect();
    order.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

    let mut best: Option<SearchResult> = None;
    let mut evaluated = 0usize;
    for (idx, lb) in order {
        if let Some(b) = &best {
            if lb >= b.value {
                // Bounds are sorted: everything later is also prunable.
                break;
            }
        }
        let config = space.config_at(idx);
        let cost = model.evaluate(network, &config, Detail::Totals).total;
        let value = cost_fn.apply(&cost);
        evaluated += 1;
        if best.as_ref().map_or(true, |b| value < b.value) {
            best = Some(SearchResult {
                config,
                config_index: idx,
                cost,
                value,
                evaluated,
            });
        }
    }
    let mut r = best.expect("hardware space is never empty");
    r.evaluated = evaluated;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use dance_accel::workload::NetworkTemplate;
    use dance_cost::metrics::CostWeights;

    fn net() -> Network {
        NetworkTemplate::cifar10().instantiate(
            &[SlotChoice::MbConv {
                kernel: 3,
                expand: 6,
            }; 9],
        )
    }

    #[test]
    fn exhaustive_finds_global_minimum() {
        let space = HardwareSpace::new();
        let model = CostModel::new();
        let r = exhaustive_search(&net(), &space, &model, &CostFunction::Edap);
        assert_eq!(r.evaluated, 4335);
        // Verify against a coarse scan.
        for i in (0..space.len()).step_by(29) {
            let c = model
                .evaluate(&net(), &space.config_at(i), Detail::Totals)
                .total;
            assert!(c.edap() >= r.value - 1e-12);
        }
    }

    #[test]
    fn branch_and_bound_matches_exhaustive() {
        let space = HardwareSpace::new();
        let model = CostModel::new();
        for cf in [
            CostFunction::Edap,
            CostFunction::Linear(CostWeights::table2()),
            CostFunction::Linear(CostWeights {
                lambda_l: 1.0,
                lambda_e: 0.0,
                lambda_a: 0.0,
            }),
        ] {
            let ex = exhaustive_search(&net(), &space, &model, &cf);
            let bb = branch_and_bound(&net(), &space, &model, &cf);
            assert_eq!(ex.config, bb.config, "{cf}");
            assert!((ex.value - bb.value).abs() < 1e-12);
        }
    }

    #[test]
    fn branch_and_bound_prunes_under_latency_cost() {
        // The admissible bound is tight on the latency axis (compute- and
        // bandwidth-bound floors), so a latency-weighted cost function gives
        // real pruning: small arrays are provably slower than the incumbent.
        let space = HardwareSpace::new();
        let model = CostModel::new();
        let cf = CostFunction::Linear(CostWeights {
            lambda_l: 1.0,
            lambda_e: 0.0,
            lambda_a: 0.0,
        });
        let bb = branch_and_bound(&net(), &space, &model, &cf);
        assert!(
            bb.evaluated < space.len(),
            "no pruning happened: {} evaluations",
            bb.evaluated
        );
    }

    #[test]
    fn table_search_matches_direct_search() {
        let space = HardwareSpace::new();
        let model = CostModel::new();
        let template = NetworkTemplate::cifar10();
        let table = CostTable::new(&template, &model, &space);
        let choices = [SlotChoice::MbConv {
            kernel: 7,
            expand: 3,
        }; 9];
        let network = template.instantiate(&choices);
        for cf in [
            CostFunction::Edap,
            CostFunction::Linear(CostWeights::table2()),
        ] {
            let direct = exhaustive_search(&network, &space, &model, &cf);
            let tabled = exhaustive_search_table(&table, &choices, &cf);
            assert_eq!(direct.config, tabled.config, "{cf}");
            assert!((direct.value - tabled.value).abs() < 1e-9);
        }
    }
}
