//! Shuffled mini-batch iteration.

use rand::rngs::StdRng;
use rand::Rng;

use crate::synth::Dataset;

/// One mini-batch of flattened signals (`batch × channels × length`,
/// channel-major per sample) and labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Flattened signal data.
    pub x: Vec<f32>,
    /// Labels, one per sample.
    pub y: Vec<usize>,
    /// Samples in this batch.
    pub batch: usize,
    /// Signal channels.
    pub channels: usize,
    /// Signal length.
    pub length: usize,
}

/// Produces shuffled mini-batches from a [`Dataset`].
#[derive(Debug)]
pub struct Batcher<'a> {
    data: &'a Dataset,
    batch_size: usize,
}

impl<'a> Batcher<'a> {
    /// Creates a batcher.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(data: &'a Dataset, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self { data, batch_size }
    }

    /// Number of batches per epoch (final partial batch included).
    pub fn batches_per_epoch(&self) -> usize {
        self.data.len().div_ceil(self.batch_size)
    }

    /// One shuffled epoch of batches.
    pub fn epoch(&self, rng: &mut StdRng) -> Vec<Batch> {
        let n = self.data.len();
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        order
            .chunks(self.batch_size)
            .map(|idxs| self.gather(idxs))
            .collect()
    }

    /// A single batch over explicit indices (e.g. the whole set for eval).
    pub fn gather(&self, idxs: &[usize]) -> Batch {
        let (c, l) = (self.data.channels(), self.data.length());
        let mut x = Vec::with_capacity(idxs.len() * c * l);
        let mut y = Vec::with_capacity(idxs.len());
        for &i in idxs {
            x.extend_from_slice(self.data.signal(i));
            y.push(self.data.label(i));
        }
        Batch {
            x,
            y,
            batch: idxs.len(),
            channels: c,
            length: l,
        }
    }

    /// The whole dataset as one batch (for evaluation).
    pub fn full(&self) -> Batch {
        let idxs: Vec<usize> = (0..self.data.len()).collect();
        self.gather(&idxs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthSpec, SynthTask};
    use rand::SeedableRng;

    fn data() -> Dataset {
        SynthTask::new(SynthSpec {
            num_classes: 3,
            channels: 2,
            length: 8,
            noise: 0.1,
            distractor: 0.1,
            seed: 0,
        })
        .generate(25, 1)
    }

    #[test]
    fn epoch_covers_every_sample_once() {
        let d = data();
        let b = Batcher::new(&d, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let batches = b.epoch(&mut rng);
        assert_eq!(batches.len(), 4); // 8+8+8+1
        let total: usize = batches.iter().map(|b| b.batch).sum();
        assert_eq!(total, 25);
        let mut label_counts = vec![0usize; 3];
        for batch in &batches {
            for &y in &batch.y {
                label_counts[y] += 1;
            }
        }
        let expected: Vec<usize> = (0..3)
            .map(|c| d.labels().iter().filter(|&&y| y == c).count())
            .collect();
        assert_eq!(label_counts, expected);
    }

    #[test]
    fn batch_layout_is_channel_major() {
        let d = data();
        let b = Batcher::new(&d, 4).gather(&[3, 7]);
        assert_eq!(b.x.len(), 2 * 2 * 8);
        assert_eq!(&b.x[..16], d.signal(3));
        assert_eq!(&b.x[16..], d.signal(7));
    }

    #[test]
    fn shuffling_differs_across_epochs() {
        let d = data();
        let b = Batcher::new(&d, 25);
        let mut rng = StdRng::seed_from_u64(3);
        let e1 = b.epoch(&mut rng);
        let e2 = b.epoch(&mut rng);
        assert_ne!(e1[0].y, e2[0].y, "two epochs produced identical order");
    }

    #[test]
    fn full_batch_is_in_order() {
        let d = data();
        let f = Batcher::new(&d, 4).full();
        assert_eq!(f.batch, 25);
        assert_eq!(f.y, d.labels());
    }
}
