//! Capacity-sensitive synthetic classification data.
//!
//! This is the repository's stand-in for CIFAR-10 / ImageNet (see DESIGN.md
//! §1): multi-channel 1-D signals in which each class is a smooth random
//! template, presented at a random circular shift with amplitude jitter,
//! additive Gaussian noise and a low-amplitude distractor from another
//! class. Translation invariance rewards convolutional ops; template detail
//! at several bandwidths rewards larger kernels and higher capacity — so
//! supernet accuracy genuinely rises with the heavier MBConv candidates, the
//! trade-off DANCE searches over.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthSpec {
    /// Number of classes.
    pub num_classes: usize,
    /// Signal channels.
    pub channels: usize,
    /// Signal length.
    pub length: usize,
    /// Additive Gaussian noise σ (controls the accuracy ceiling).
    pub noise: f32,
    /// Amplitude of the cross-class distractor template.
    pub distractor: f32,
    /// Random seed for the class templates.
    pub seed: u64,
}

/// An in-memory labelled dataset of `channels × length` signals.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    xs: Vec<Vec<f32>>,
    ys: Vec<usize>,
    channels: usize,
    length: usize,
    num_classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// Signal channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Signal length.
    pub fn length(&self) -> usize {
        self.length
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The `i`-th signal, flattened channel-major (`channels × length`).
    pub fn signal(&self, i: usize) -> &[f32] {
        &self.xs[i]
    }

    /// The `i`-th label.
    pub fn label(&self, i: usize) -> usize {
        self.ys[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.ys
    }
}

/// The class templates plus sampling machinery.
#[derive(Debug, Clone)]
pub struct SynthTask {
    spec: SynthSpec,
    /// `templates[class][channel * length + t]`.
    templates: Vec<Vec<f32>>,
}

impl SynthTask {
    /// Builds the class templates for a specification.
    ///
    /// # Panics
    ///
    /// Panics if any dimension of the spec is zero.
    pub fn new(spec: SynthSpec) -> Self {
        assert!(
            spec.num_classes > 0 && spec.channels > 0 && spec.length > 0,
            "degenerate synth spec {spec:?}"
        );
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let templates = (0..spec.num_classes)
            .map(|_| Self::smooth_template(&spec, &mut rng))
            .collect();
        Self { spec, templates }
    }

    /// The specification this task was built from.
    pub fn spec(&self) -> &SynthSpec {
        &self.spec
    }

    /// A smooth random template: white noise filtered at a random bandwidth
    /// per channel, so classes differ at multiple scales.
    fn smooth_template(spec: &SynthSpec, rng: &mut StdRng) -> Vec<f32> {
        let (c, l) = (spec.channels, spec.length);
        let mut t = vec![0.0f32; c * l];
        for ch in 0..c {
            // Kernel width 1 (fine detail) to ~l/3 (coarse structure).
            let width = 1 + rng.gen_range(0..(l / 3).max(1));
            let raw: Vec<f32> = (0..l).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            for i in 0..l {
                let mut acc = 0.0;
                for j in 0..width {
                    acc += raw[(i + j) % l];
                }
                t[ch * l + i] = acc / (width as f32).sqrt();
            }
        }
        // Normalize template to unit RMS.
        let rms = (t.iter().map(|x| x * x).sum::<f32>() / t.len() as f32).sqrt();
        if rms > 0.0 {
            t.iter_mut().for_each(|x| *x /= rms);
        }
        t
    }

    /// Draws one sample of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn sample(&self, class: usize, rng: &mut StdRng) -> Vec<f32> {
        assert!(class < self.spec.num_classes, "class {class} out of range");
        let (c, l) = (self.spec.channels, self.spec.length);
        let shift = rng.gen_range(0..l);
        let amp = rng.gen_range(0.8f32..1.2);
        let distractor_class = rng.gen_range(0..self.spec.num_classes);
        let distractor_shift = rng.gen_range(0..l);

        let mut x = vec![0.0f32; c * l];
        let tmpl = &self.templates[class];
        let dist = &self.templates[distractor_class];
        for ch in 0..c {
            for t in 0..l {
                let v = amp * tmpl[ch * l + (t + shift) % l]
                    + self.spec.distractor * dist[ch * l + (t + distractor_shift) % l];
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0f32..1.0);
                let noise = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                x[ch * l + t] = v + self.spec.noise * noise;
            }
        }
        x
    }

    /// Generates a balanced labelled dataset of `n` samples.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % self.spec.num_classes;
            xs.push(self.sample(class, &mut rng));
            ys.push(class);
        }
        // Shuffle sample order (Fisher–Yates).
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            xs.swap(i, j);
            ys.swap(i, j);
        }
        Dataset {
            xs,
            ys,
            channels: self.spec.channels,
            length: self.spec.length,
            num_classes: self.spec.num_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SynthSpec {
        SynthSpec {
            num_classes: 4,
            channels: 2,
            length: 16,
            noise: 0.3,
            distractor: 0.3,
            seed: 1,
        }
    }

    #[test]
    fn dataset_is_balanced_and_shaped() {
        let task = SynthTask::new(spec());
        let d = task.generate(40, 2);
        assert_eq!(d.len(), 40);
        assert_eq!(d.signal(0).len(), 32);
        for class in 0..4 {
            let count = d.labels().iter().filter(|&&y| y == class).count();
            assert_eq!(count, 10, "class {class} imbalanced");
        }
    }

    #[test]
    fn templates_are_distinct_across_classes() {
        let task = SynthTask::new(spec());
        let a = task.sample(0, &mut StdRng::seed_from_u64(3));
        let b = task.sample(1, &mut StdRng::seed_from_u64(3));
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1.0, "classes produce near-identical samples");
    }

    #[test]
    fn same_seed_same_data() {
        let task = SynthTask::new(spec());
        assert_eq!(task.generate(20, 5), task.generate(20, 5));
        assert_ne!(task.generate(20, 5), task.generate(20, 6));
    }

    #[test]
    fn noise_free_samples_are_shifted_templates() {
        let mut s = spec();
        s.noise = 0.0;
        s.distractor = 0.0;
        let task = SynthTask::new(s);
        let mut rng = StdRng::seed_from_u64(7);
        let x = task.sample(2, &mut rng);
        // Some circular shift of the template (scaled 0.8–1.2) must match.
        let l = s.length;
        let tmpl = &task.templates[2];
        let mut best = f32::INFINITY;
        for shift in 0..l {
            // Least-squares amplitude for this shift.
            let (mut dot, mut nrm) = (0.0f32, 0.0f32);
            for i in 0..s.channels * l {
                let (ch, t) = (i / l, i % l);
                let tv = tmpl[ch * l + (t + shift) % l];
                dot += x[i] * tv;
                nrm += tv * tv;
            }
            let amp = dot / nrm.max(1e-12);
            let err: f32 = (0..s.channels * l)
                .map(|i| {
                    let (ch, t) = (i / l, i % l);
                    (x[i] - amp * tmpl[ch * l + (t + shift) % l]).abs()
                })
                .sum();
            best = best.min(err);
        }
        assert!(
            best < 1e-3,
            "no shift/amp explains the sample: best err {best}"
        );
    }

    #[test]
    fn nearest_template_classifies_low_noise_data() {
        // Sanity: with mild noise, correlation against class templates at the
        // best shift should recover the label most of the time — i.e. the
        // task is actually learnable.
        let mut s = spec();
        s.noise = 0.2;
        s.distractor = 0.2;
        let task = SynthTask::new(s);
        let d = task.generate(80, 9);
        let l = s.length;
        let mut correct = 0;
        for i in 0..d.len() {
            let x = d.signal(i);
            let mut best = (0usize, f32::NEG_INFINITY);
            for (class, tmpl) in task.templates.iter().enumerate() {
                for shift in 0..l {
                    let score: f32 = (0..s.channels * l)
                        .map(|idx| {
                            let ch = idx / l;
                            let t = idx % l;
                            x[idx] * tmpl[ch * l + (t + shift) % l]
                        })
                        .sum();
                    if score > best.1 {
                        best = (class, score);
                    }
                }
            }
            if best.0 == d.label(i) {
                correct += 1;
            }
        }
        let acc = correct as f32 / d.len() as f32;
        assert!(acc > 0.8, "oracle accuracy only {acc}");
    }
}
