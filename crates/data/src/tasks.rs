//! The two benchmark tasks: SynthCifar and SynthImageNet.
//!
//! Sizes and noise levels are calibrated so a well-sized supernet reaches
//! roughly the accuracy ceilings the paper reports on the real datasets
//! (≈94–95% on CIFAR-10, ≈70% top-1 on ImageNet), while remaining trainable
//! on a CPU in seconds — see DESIGN.md §1 for the substitution rationale.

use crate::synth::{Dataset, SynthSpec, SynthTask};

/// Train/validation/test triplet.
#[derive(Debug, Clone)]
pub struct TaskData {
    /// The generating task (templates).
    pub task: SynthTask,
    /// Training split (used for supernet weight updates).
    pub train: Dataset,
    /// Validation split (used for architecture-parameter updates).
    pub val: Dataset,
    /// Held-out test split (reported accuracy).
    pub test: Dataset,
}

/// SynthCifar: the CIFAR-10 stand-in — 10 classes, 4×16 signals, moderate
/// noise (accuracy ceiling ≈95%).
pub fn synth_cifar(seed: u64) -> TaskData {
    let task = SynthTask::new(SynthSpec {
        num_classes: 10,
        channels: 4,
        length: 16,
        noise: 0.45,
        distractor: 0.35,
        seed,
    });
    let train = task.generate(2_000, seed.wrapping_add(1));
    let val = task.generate(500, seed.wrapping_add(2));
    let test = task.generate(500, seed.wrapping_add(3));
    TaskData {
        task,
        train,
        val,
        test,
    }
}

/// SynthTiny: a seconds-scale smoke task — 3 classes, 2×8 signals — used by
/// CI smokes and `dance-serve` search jobs, where the point is exercising
/// the full search stack rather than reaching a paper accuracy number.
pub fn synth_tiny(seed: u64) -> TaskData {
    let task = SynthTask::new(SynthSpec {
        num_classes: 3,
        channels: 2,
        length: 8,
        noise: 0.25,
        distractor: 0.15,
        seed,
    });
    let train = task.generate(120, seed.wrapping_add(1));
    let val = task.generate(60, seed.wrapping_add(2));
    let test = task.generate(60, seed.wrapping_add(3));
    TaskData {
        task,
        train,
        val,
        test,
    }
}

/// SynthImageNet: the ImageNet stand-in — 100 classes, 4×32 signals, heavier
/// noise (accuracy ceiling ≈70%).
pub fn synth_imagenet(seed: u64) -> TaskData {
    let task = SynthTask::new(SynthSpec {
        num_classes: 100,
        channels: 4,
        length: 32,
        noise: 0.95,
        distractor: 0.55,
        seed,
    });
    let train = task.generate(5_000, seed.wrapping_add(1));
    let val = task.generate(1_000, seed.wrapping_add(2));
    let test = task.generate(1_000, seed.wrapping_add(3));
    TaskData {
        task,
        train,
        val,
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cifar_task_shapes() {
        let d = synth_cifar(0);
        assert_eq!(d.train.num_classes(), 10);
        assert_eq!(d.train.channels(), 4);
        assert_eq!(d.train.length(), 16);
        assert_eq!(d.train.len(), 2_000);
        assert_eq!(d.val.len(), 500);
        assert_eq!(d.test.len(), 500);
    }

    #[test]
    fn imagenet_task_is_bigger_and_harder() {
        let c = synth_cifar(0);
        let i = synth_imagenet(0);
        assert!(i.train.num_classes() > c.train.num_classes());
        assert!(i.train.length() > c.train.length());
        assert!(i.task.spec().noise > c.task.spec().noise);
    }

    #[test]
    fn splits_are_disjoint_draws() {
        let d = synth_cifar(1);
        // Not literally disjoint sets (continuous data), but different draws.
        assert_ne!(d.train.signal(0), d.val.signal(0));
    }
}
