#![warn(missing_docs)]

//! # dance-data
//!
//! Synthetic, capacity-sensitive classification datasets — the CIFAR-10 and
//! ImageNet substitutes of the DANCE reproduction (see DESIGN.md §1 for the
//! substitution rationale). [`synth`] builds class-template signal tasks,
//! [`tasks`] provides the calibrated SynthCifar / SynthImageNet benchmarks,
//! and [`loader`] supplies shuffled mini-batches.
//!
//! ```
//! use dance_data::prelude::*;
//! use rand::SeedableRng;
//!
//! let data = synth_cifar(0);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let batches = Batcher::new(&data.train, 64).epoch(&mut rng);
//! assert_eq!(batches[0].channels, 4);
//! ```

pub mod loader;
pub mod synth;
pub mod tasks;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::loader::{Batch, Batcher};
    pub use crate::synth::{Dataset, SynthSpec, SynthTask};
    pub use crate::tasks::{synth_cifar, synth_imagenet, synth_tiny, TaskData};
}
