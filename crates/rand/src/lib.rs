//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this path crate
//! shadows the real `rand` dependency. It implements exactly what the DANCE
//! crates consume: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods [`Rng::gen_range`] / [`Rng::gen_bool`]
//! over integer and floating-point ranges.
//!
//! The generator is xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64 — a different stream than upstream `StdRng` (ChaCha12), but
//! deterministic per seed, statistically solid for simulation workloads, and
//! far faster than a cryptographic generator needs to be.

/// A source of raw 64-bit randomness (mirror of `rand_core::RngCore`,
/// reduced to what the workspace calls).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (mirror of `rand::SeedableRng`, reduced to
/// `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Multiply-shift bounded sampling: uniform in `[0, span)` without modulo
/// bias worth caring about at these span sizes.
#[inline]
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0, "empty sample range");
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = (hi_w - lo_w + i128::from(inclusive)) as u64;
                assert!(span > 0, "gen_range called with an empty range");
                (lo_w + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                // 53 random bits -> [0, 1), then affine map onto the range.
                let frac = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = lo as f64 + (hi as f64 - lo as f64) * frac;
                // Affine rounding can land exactly on `hi` in f32; keep the
                // half-open contract the callers rely on.
                if v as $t >= hi { lo } else { v as $t }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`] (mirror of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience extension methods over any [`RngCore`] (mirror of
/// `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` half-open, `lo..=hi` inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators (mirror of `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The full 256-bit generator state, for checkpointing: a generator
        /// rebuilt with [`StdRng::from_state`] continues the exact stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        ///
        /// # Panics
        ///
        /// Panics if the state is all zeros (the one state xoshiro256++ can
        /// never leave — a checkpoint containing it is corrupt).
        pub fn from_state(state: [u64; 4]) -> Self {
            assert!(
                state.iter().any(|&w| w != 0),
                "all-zero xoshiro256++ state: corrupt RNG checkpoint"
            );
            Self { s: state }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0usize..1_000_000),
                b.gen_range(0usize..1_000_000)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0, "different seeds produced identical streams");
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..7);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some values never sampled: {seen:?}"
        );
        for _ in 0..1_000 {
            let v = rng.gen_range(3i64..=5);
            assert!((3..=5).contains(&v));
        }
        assert_eq!(rng.gen_range(4usize..5), 4);
        assert_eq!(rng.gen_range(9usize..=9), 9);
    }

    #[test]
    fn float_ranges_are_half_open_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0f64;
        const N: usize = 20_000;
        for _ in 0..N {
            let v = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v), "{v} out of range");
            sum += f64::from(v);
        }
        assert!((sum / N as f64).abs() < 0.02, "mean {}", sum / N as f64);
        let tiny = rng.gen_range(f32::EPSILON..1.0);
        assert!(tiny >= f32::EPSILON && tiny < 1.0);
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..13 {
            let _ = rng.next_u64();
        }
        let saved = rng.state();
        let ahead: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let mut restored = StdRng::from_state(saved);
        let replay: Vec<u64> = (0..8).map(|_| restored.next_u64()).collect();
        assert_eq!(ahead, replay, "restored RNG diverged from the saved stream");
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn all_zero_state_is_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
