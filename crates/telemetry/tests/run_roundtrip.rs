//! End-to-end run-log roundtrip: open a run, emit every event family, close
//! it, and parse the artifact back with the `summarize` engine. One test per
//! file — the run sink is process-global, so this binary owns its process.

use dance_telemetry::{runlog, summarize};

#[test]
fn run_log_roundtrips_through_summarize() {
    // Pin the run directory before any telemetry call so the artifact lands
    // in this test's scratch space (edition 2021: set_var is safe).
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("run_roundtrip");
    std::env::set_var("DANCE_RUN_DIR", &dir);
    std::env::set_var("DANCE_TELEMETRY", "on");
    assert!(dance_telemetry::enabled(), "env override failed");

    let path = {
        let run = runlog::RunGuard::start("roundtrip").expect("run should start");
        assert!(runlog::active_run_path().is_some());
        assert!(run.id().starts_with("roundtrip-"));
        {
            let _phase = dance_telemetry::span!("test.rt.phase");
            for i in 0..4 {
                let _step = dance_telemetry::hot_span!("test.rt.step");
                dance_telemetry::counter!("test.rt.items", 2);
                dance_telemetry::histogram!("test.rt.loss", 1.0 / (i as f64 + 1.0));
            }
            dance_telemetry::gauge!("test.rt.lambda", 0.125);
        }
        run.path().to_path_buf()
    };
    assert!(runlog::active_run_path().is_none(), "run did not close");

    let summary = summarize::summarize_file(&path).expect("artifact parses");
    assert_eq!(summary.kind, "roundtrip");
    for kind in [
        "meta", "span", "gauge", "span_agg", "counter", "hist", "run_end",
    ] {
        assert!(
            summary.event_kinds.contains(kind),
            "artifact is missing event kind {kind}; has {:?}",
            summary.event_kinds
        );
    }
    // The streamed span and the gauge time series made it through.
    assert!(summary.spans.iter().any(|s| s.name == "test.rt.phase"));
    assert!((summary.gauges["test.rt.lambda"] - 0.125).abs() < 1e-12);
    // Aggregates: the hot span never streamed but its aggregate row exists.
    let step = summary
        .span_aggs
        .iter()
        .find(|a| a.name == "test.rt.step")
        .expect("hot span aggregate missing");
    assert_eq!(step.count, 4);
    assert_eq!(summary.counters["test.rt.items"], 8);
    assert_eq!(summary.hists["test.rt.loss"].count, 4);
    assert!(summary.total_ms.is_some());

    // The renderer mentions the big-ticket rows.
    let text = summarize::render(&summary, 5);
    assert!(text.contains("test.rt.step"));
    assert!(text.contains("test.rt.items"));

    // A second run in the same process starts cleanly after the first closed
    // and resets aggregates so its artifact is self-contained.
    let run2 = runlog::RunGuard::start("roundtrip2").expect("second run starts");
    dance_telemetry::counter!("test.rt2.only", 1);
    let path2 = run2.path().to_path_buf();
    drop(run2);
    let summary2 = summarize::summarize_file(&path2).expect("second artifact parses");
    assert!(summary2.counters.contains_key("test.rt2.only"));
    assert!(
        !summary2.counters.contains_key("test.rt.items"),
        "aggregates leaked across runs"
    );
}
