//! Multi-thread stress: concurrent spans, counters and histograms must not
//! corrupt the global aggregates. One test per file — telemetry state is
//! process-global, so this binary owns its process.

use std::thread;

#[test]
fn concurrent_spans_and_metrics_do_not_corrupt() {
    if !dance_telemetry::enabled() {
        return; // nothing to assert when the env disables telemetry
    }
    const THREADS: usize = 8;
    const ITERS: u64 = 200;

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            thread::spawn(move || {
                for i in 0..ITERS {
                    let _outer = dance_telemetry::hot_span!("test.conc.outer");
                    {
                        let _inner = dance_telemetry::hot_span!("test.conc.inner");
                        dance_telemetry::counter!("test.conc.counter");
                        dance_telemetry::histogram!(
                            "test.conc.hist",
                            (t as f64 + 1.0) * (i as f64 + 1.0) / 100.0
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    let expected = (THREADS as u64) * ITERS;
    let report = dance_telemetry::span::span_report();
    for name in ["test.conc.outer", "test.conc.inner"] {
        let row = report
            .iter()
            .find(|a| a.name == name)
            .unwrap_or_else(|| panic!("span {name} missing from the report"));
        assert_eq!(row.stats.count, expected, "span {name} lost closes");
        assert!(row.stats.min_ns <= row.stats.max_ns);
        assert!(row.stats.total_ns >= row.stats.max_ns);
    }

    let snap = dance_telemetry::metrics::snapshot();
    assert_eq!(snap.counters["test.conc.counter"], expected);
    let h = &snap.histograms["test.conc.hist"];
    assert_eq!(h.count, expected);
    let bucketed: u64 = h.counts().iter().sum();
    assert_eq!(bucketed, expected, "histogram lost finite observations");
}
