//! A minimal JSON reader/writer for the run-log format.
//!
//! The run-log sink writes one JSON object per line; the `summarize` CLI and
//! the integration tests read them back. The workspace is offline and
//! dependency-free, so this module implements just enough of RFC 8259 for
//! those artifacts: objects, arrays, strings (with `\uXXXX` escapes),
//! numbers, booleans and null. It is a strict parser — trailing garbage and
//! malformed literals are errors — because every producer is in this crate.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (keys are sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parses one complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error,
/// including the byte offset.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes: Vec<char> = input.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], ' ' | '\t' | '\n' | '\r') {
        *pos += 1;
    }
}

fn expect_char(b: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{c}` at offset {pos}", pos = *pos))
    }
}

fn parse_value(b: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some('{') => parse_object(b, pos),
        Some('[') => parse_array(b, pos),
        Some('"') => parse_string(b, pos).map(Json::Str),
        Some('t') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some('f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some('n') => parse_literal(b, pos, "null", Json::Null),
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(b, pos),
        Some(c) => Err(format!("unexpected `{c}` at offset {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(b: &[char], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    for c in lit.chars() {
        expect_char(b, pos, c)?;
    }
    Ok(value)
}

fn parse_number(b: &[char], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && (b[*pos].is_ascii_digit() || "+-.eE".contains(b[*pos])) {
        *pos += 1;
    }
    let text: String = b[start..*pos].iter().collect();
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number `{text}` at offset {start}: {e}"))
}

fn parse_string(b: &[char], pos: &mut usize) -> Result<String, String> {
    expect_char(b, pos, '"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let esc = b
                    .get(*pos)
                    .copied()
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'b' => out.push('\u{0008}'),
                    'f' => out.push('\u{000C}'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        if *pos + 4 > b.len() {
                            return Err("truncated \\u escape".to_string());
                        }
                        let hex: String = b[*pos..*pos + 4].iter().collect();
                        *pos += 4;
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|e| format!("bad \\u escape `{hex}`: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("unknown escape `\\{other}`")),
                }
            }
            _ => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(b: &[char], pos: &mut usize) -> Result<Json, String> {
    expect_char(b, pos, '[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(',') => {
                *pos += 1;
            }
            Some(']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[char], pos: &mut usize) -> Result<Json, String> {
    expect_char(b, pos, '{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect_char(b, pos, ':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(',') => {
                *pos += 1;
            }
            Some('}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
        }
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _unused: std::fmt::Result = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number to `out`. Non-finite values (which JSON cannot
/// represent) are written as `null`.
pub fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _unused: std::fmt::Result = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"t":"span","ms":1.5,"tags":["a","b"],"ok":true,"none":null,"n":-2e3}"#;
        let v = parse(doc).expect("document parses");
        assert_eq!(v.get("t").and_then(Json::as_str), Some("span"));
        assert_eq!(v.get("ms").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(-2000.0));
        assert_eq!(
            v.get("tags").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("none"), Some(&Json::Null));
    }

    #[test]
    fn escapes_roundtrip() {
        let mut line = String::from("{\"s\":");
        push_escaped(&mut line, "a\"b\\c\nd\te\u{1}");
        line.push('}');
        let v = parse(&line).expect("escaped string parses");
        assert_eq!(
            v.get("s").and_then(Json::as_str),
            Some("a\"b\\c\nd\te\u{1}")
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut out = String::new();
        push_num(&mut out, f64::NAN);
        assert_eq!(out, "null");
        let mut out2 = String::new();
        push_num(&mut out2, 2.5);
        assert_eq!(out2, "2.5");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn parses_empty_containers() {
        assert_eq!(
            parse("{}").expect("empty object"),
            Json::Obj(BTreeMap::new())
        );
        assert_eq!(parse("[]").expect("empty array"), Json::Arr(Vec::new()));
    }
}
