//! The run-log sink: one JSONL artifact per run.
//!
//! A [`RunGuard`] opens `results/runs/<run-id>.jsonl` (override the
//! directory with `DANCE_RUN_DIR`), resets the global aggregates so the file
//! is self-contained, and streams events while alive:
//!
//! | event      | when                                   | payload |
//! |------------|----------------------------------------|---------|
//! | `meta`     | first line of the file                 | run id, kind, schema version, unix start time |
//! | `span`     | a streamed [`crate::span!`] closes     | name, duration ms, nesting depth, thread, time offset |
//! | `gauge`    | [`crate::gauge!`] fires                | name, value, time offset |
//! | `guard`    | a `dance-guard` recovery action fires  | event name, detail, time offset |
//! | `span_agg` | run end, one per span name             | count, total/mean/p50/p95/min/max ms |
//! | `counter`  | run end, one per counter               | name, final value |
//! | `hist`     | run end, one per histogram             | count, mean/min/max/p50/p95, non-empty buckets |
//! | `run_end`  | last line of the file                  | total wall ms, event count |
//!
//! Hot spans ([`crate::hot_span!`]) and counters never stream per event —
//! their aggregate lines at run end carry the same information at a
//! fraction of the volume. Only one run can be active per process; nested
//! [`RunGuard::start`] calls return `None` and the inner scope's events
//! flow into the outer run's file, which is exactly what a pipeline calling
//! into the search loop wants.

use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::json::{push_escaped, push_num};
use crate::{metrics, span};

/// Schema version stamped into every `meta` event.
pub const SCHEMA_VERSION: u64 = 1;

struct Sink {
    writer: BufWriter<fs::File>,
    path: PathBuf,
    start: Instant,
    seq: u64,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

fn lock_sink() -> MutexGuard<'static, Option<Sink>> {
    SINK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The directory run logs are written to: `DANCE_RUN_DIR` when set,
/// otherwise `results/runs` at the workspace root.
pub fn run_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("DANCE_RUN_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/runs")
}

/// Path of the currently active run log, if a run is open.
pub fn active_run_path() -> Option<PathBuf> {
    lock_sink().as_ref().map(|s| s.path.clone())
}

fn write_line(sink: &mut Sink, line: &str) {
    // Run logging is best effort: a full disk must not abort a search.
    // Callers hold the SINK guard by design — it *is* the serialization
    // point for the single shared artifact, and these writes land in a
    // BufWriter (the flush is a small append, not bulk I/O).
    // analyze:allow(lock-across-dispatch) SINK guard is the sink's write serializer
    if sink.writer.write_all(line.as_bytes()).is_err() {
        return;
    }
    // analyze:allow(lock-across-dispatch) serialized sink write, see above
    let _ignored_result = sink.writer.write_all(b"\n");
    // analyze:allow(lock-across-dispatch) serialized sink write, see above
    let _ignored_result = sink.writer.flush();
}

/// Streams a `span` event (called from [`crate::span::SpanGuard`] on drop).
pub(crate) fn emit_span(name: &str, ns: u64, depth: u32) {
    let mut guard = lock_sink();
    let Some(sink) = guard.as_mut() else { return };
    sink.seq += 1;
    let mut line = String::with_capacity(128);
    line.push_str("{\"t\":\"span\",\"name\":");
    push_escaped(&mut line, name);
    line.push_str(",\"ms\":");
    push_num(&mut line, ns as f64 / 1e6);
    line.push_str(",\"depth\":");
    push_num(&mut line, f64::from(depth));
    line.push_str(",\"thread\":");
    push_escaped(&mut line, std::thread::current().name().unwrap_or("?"));
    line.push_str(",\"at_ms\":");
    push_num(&mut line, sink.start.elapsed().as_secs_f64() * 1e3);
    line.push_str(",\"seq\":");
    push_num(&mut line, sink.seq as f64);
    line.push('}');
    write_line(sink, &line);
}

/// Streams a `guard` event: a fault-tolerance action (watchdog trip,
/// rollback, checkpoint skip, cost-model degradation) with a free-form
/// detail string. No-op when no run log is active; `summarize` readers that
/// predate the event kind skip it (unknown `t` values are tolerated by
/// contract).
pub fn emit_guard(event: &str, detail: &str) {
    let mut guard = lock_sink();
    let Some(sink) = guard.as_mut() else { return };
    sink.seq += 1;
    let mut line = String::with_capacity(96);
    line.push_str("{\"t\":\"guard\",\"event\":");
    push_escaped(&mut line, event);
    line.push_str(",\"detail\":");
    push_escaped(&mut line, detail);
    line.push_str(",\"at_ms\":");
    push_num(&mut line, sink.start.elapsed().as_secs_f64() * 1e3);
    line.push_str(",\"seq\":");
    push_num(&mut line, sink.seq as f64);
    line.push('}');
    write_line(sink, &line);
}

/// Streams a `gauge` event (called from [`crate::metrics::set_gauge`]).
pub(crate) fn emit_gauge(name: &str, value: f64) {
    let mut guard = lock_sink();
    let Some(sink) = guard.as_mut() else { return };
    sink.seq += 1;
    let mut line = String::with_capacity(96);
    line.push_str("{\"t\":\"gauge\",\"name\":");
    push_escaped(&mut line, name);
    line.push_str(",\"value\":");
    push_num(&mut line, value);
    line.push_str(",\"at_ms\":");
    push_num(&mut line, sink.start.elapsed().as_secs_f64() * 1e3);
    line.push_str(",\"seq\":");
    push_num(&mut line, sink.seq as f64);
    line.push('}');
    write_line(sink, &line);
}

fn span_agg_line(name: &str, stats: &span::SpanStats) -> String {
    let mut line = String::with_capacity(160);
    line.push_str("{\"t\":\"span_agg\",\"name\":");
    push_escaped(&mut line, name);
    line.push_str(",\"count\":");
    push_num(&mut line, stats.count as f64);
    for (key, ns) in [
        ("total_ms", stats.total_ns),
        ("mean_ms", stats.mean_ns()),
        ("p50_ms", stats.quantile_ns(0.5)),
        ("p95_ms", stats.quantile_ns(0.95)),
        ("min_ms", if stats.count == 0 { 0 } else { stats.min_ns }),
        ("max_ms", stats.max_ns),
    ] {
        line.push_str(",\"");
        line.push_str(key);
        line.push_str("\":");
        push_num(&mut line, ns as f64 / 1e6);
    }
    line.push('}');
    line
}

fn hist_line(name: &str, h: &metrics::Histogram) -> String {
    let mut line = String::with_capacity(192);
    line.push_str("{\"t\":\"hist\",\"name\":");
    push_escaped(&mut line, name);
    line.push_str(",\"count\":");
    push_num(&mut line, h.count as f64);
    for (key, v) in [
        ("mean", h.mean()),
        ("min", if h.count == 0 { 0.0 } else { h.min }),
        ("max", if h.count == 0 { 0.0 } else { h.max }),
        ("p50", h.quantile(0.5)),
        ("p95", h.quantile(0.95)),
    ] {
        line.push_str(",\"");
        line.push_str(key);
        line.push_str("\":");
        push_num(&mut line, v);
    }
    // Non-empty buckets as [upper_bound, count] pairs; the overflow bucket
    // has no upper bound and is written as null.
    line.push_str(",\"buckets\":[");
    let mut first = true;
    for (idx, &c) in h.counts().iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            line.push(',');
        }
        first = false;
        line.push('[');
        match h.bounds().get(idx) {
            Some(&b) => push_num(&mut line, b),
            None => line.push_str("null"),
        }
        line.push(',');
        push_num(&mut line, c as f64);
        line.push(']');
    }
    line.push_str("]}");
    line
}

/// Renders the human-readable summary table of the current aggregates.
///
/// Shared by the run-end banner and the `summarize` CLI so both views of a
/// run agree.
pub fn summary_table(spans: &[span::SpanAgg], metrics_snap: &metrics::MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<38} {:>9} {:>12} {:>10} {:>10} {:>10}\n",
        "span", "count", "total_ms", "mean_ms", "p50_ms", "p95_ms"
    ));
    for agg in spans {
        let s = &agg.stats;
        out.push_str(&format!(
            "{:<38} {:>9} {:>12.3} {:>10.4} {:>10.4} {:>10.4}\n",
            agg.name,
            s.count,
            s.total_ns as f64 / 1e6,
            s.mean_ns() as f64 / 1e6,
            s.quantile_ns(0.5) as f64 / 1e6,
            s.quantile_ns(0.95) as f64 / 1e6,
        ));
    }
    if !metrics_snap.counters.is_empty() {
        out.push_str("\ncounters:\n");
        for (name, value) in &metrics_snap.counters {
            out.push_str(&format!("  {name:<40} {value}\n"));
        }
    }
    if !metrics_snap.gauges.is_empty() {
        out.push_str("\ngauges (last value):\n");
        for (name, value) in &metrics_snap.gauges {
            out.push_str(&format!("  {name:<40} {value:.6}\n"));
        }
    }
    if !metrics_snap.histograms.is_empty() {
        out.push_str("\nhistograms:\n");
        for (name, h) in &metrics_snap.histograms {
            out.push_str(&format!(
                "  {name:<40} n={} mean={:.4} p50={:.4} p95={:.4}\n",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.95),
            ));
        }
    }
    out
}

/// Serializes the current aggregates as one standalone JSON document — the
/// payload of the `BENCH_<name>.json` artifacts the bench binaries emit.
pub fn snapshot_json(label: &str, total_wall_s: f64) -> String {
    let spans = span::span_report();
    let snap = metrics::snapshot();
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"bench\": ");
    push_escaped(&mut out, label);
    out.push_str(",\n  \"schema\": ");
    push_num(&mut out, SCHEMA_VERSION as f64);
    out.push_str(",\n  \"total_wall_s\": ");
    push_num(&mut out, total_wall_s);
    out.push_str(",\n  \"spans\": [");
    for (i, agg) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&span_agg_line(&agg.name, &agg.stats));
    }
    out.push_str("\n  ],\n  \"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_escaped(&mut out, name);
        out.push_str(": ");
        push_num(&mut out, *value as f64);
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_escaped(&mut out, name);
        out.push_str(": ");
        push_num(&mut out, *value);
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Claims a collision-free run id by creating its artifact with
/// `create_new`: the timestamp/pid/counter id scheme alone is not unique
/// when several sinks share one run dir — a server plus the search jobs it
/// embeds, concurrent bench processes after pid reuse — so the filesystem
/// is the arbiter. `AlreadyExists` bumps the process-wide counter and
/// retries; any other error aborts (telemetry stays best-effort).
fn create_unique_run_file(
    dir: &Path,
    kind: &str,
    unix_ms: u128,
) -> std::io::Result<(String, PathBuf, fs::File)> {
    loop {
        let id = format!(
            "{kind}-{}-{}-{}",
            unix_ms / 1000,
            std::process::id(),
            RUN_COUNTER.fetch_add(1, Ordering::Relaxed),
        );
        let path = dir.join(format!("{id}.jsonl"));
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(file) => return Ok((id, path, file)),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
}

/// An open run log. Dropping the guard dumps every aggregate into the file,
/// appends the `run_end` event and prints the summary table to stderr.
#[must_use = "bind the run guard to a named variable; dropping it immediately closes the run"]
#[derive(Debug)]
pub struct RunGuard {
    id: String,
    path: PathBuf,
}

impl RunGuard {
    /// Starts a run log of the given kind, unless telemetry is disabled or
    /// another run is already active (both return `None`; events then flow
    /// into the active run, if any). Resets all span/metric aggregates on an
    /// actual start so the artifact is self-contained. I/O failures are
    /// reported to stderr and degrade to `None` — telemetry never takes the
    /// workload down.
    pub fn start(kind: &str) -> Option<RunGuard> {
        if !crate::enabled() {
            return None;
        }
        // Fast check, then drop the guard: directory creation and file I/O
        // below must not run under SINK (lock-across-dispatch); the publish
        // step re-checks for a racing start.
        if lock_sink().is_some() {
            return None;
        }
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let dir = run_dir();
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!(
                "dance-telemetry: cannot create run dir {}: {e}",
                dir.display()
            );
            return None;
        }
        let (id, path, file) = match create_unique_run_file(&dir, kind, unix_ms) {
            Ok(claimed) => claimed,
            Err(e) => {
                eprintln!(
                    "dance-telemetry: cannot create run log in {}: {e}",
                    dir.display()
                );
                return None;
            }
        };
        span::reset();
        metrics::reset();
        let mut sink = Sink {
            writer: BufWriter::new(file),
            path: path.clone(),
            start: Instant::now(),
            seq: 0,
        };
        let mut meta = String::with_capacity(96);
        meta.push_str("{\"t\":\"meta\",\"v\":");
        push_num(&mut meta, SCHEMA_VERSION as f64);
        meta.push_str(",\"run\":");
        push_escaped(&mut meta, &id);
        meta.push_str(",\"kind\":");
        push_escaped(&mut meta, kind);
        meta.push_str(",\"unix_ms\":");
        push_num(&mut meta, unix_ms as f64);
        meta.push('}');
        write_line(&mut sink, &meta);
        // Publish. A racing start() may have won between the fast check and
        // here; this one then withdraws and removes its unused artifact.
        let mut guard = lock_sink();
        if guard.is_some() {
            drop(guard);
            let _ignored_result = fs::remove_file(&path);
            return None;
        }
        *guard = Some(sink);
        Some(RunGuard { id, path })
    }

    /// The run id (also the file stem of the artifact).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The path of the JSONL artifact.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for RunGuard {
    fn drop(&mut self) {
        let Some(mut sink) = lock_sink().take() else {
            return;
        };
        let spans = span::span_report();
        let snap = metrics::snapshot();
        for agg in &spans {
            let line = span_agg_line(&agg.name, &agg.stats);
            write_line(&mut sink, &line);
        }
        for (name, value) in &snap.counters {
            let mut line = String::with_capacity(80);
            line.push_str("{\"t\":\"counter\",\"name\":");
            push_escaped(&mut line, name);
            line.push_str(",\"value\":");
            push_num(&mut line, *value as f64);
            line.push('}');
            write_line(&mut sink, &line);
        }
        for (name, h) in &snap.histograms {
            let line = hist_line(name, h);
            write_line(&mut sink, &line);
        }
        let total_ms = sink.start.elapsed().as_secs_f64() * 1e3;
        let mut end = String::with_capacity(64);
        end.push_str("{\"t\":\"run_end\",\"total_ms\":");
        push_num(&mut end, total_ms);
        end.push_str(",\"events\":");
        push_num(&mut end, sink.seq as f64);
        end.push('}');
        write_line(&mut sink, &end);
        eprintln!(
            "\n== dance-telemetry run {} ({:.1} ms) → {} ==\n{}",
            self.id,
            total_ms,
            sink.path.display(),
            summary_table(&spans, &snap),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colliding_run_ids_skip_to_the_next_counter() {
        let dir = std::env::temp_dir().join(format!("dance_runid_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        // Pre-claim the ids the next two counter values would produce, as a
        // colliding process (same second, reused pid) would have.
        let next = RUN_COUNTER.load(Ordering::Relaxed);
        let stamp: u128 = 1_700_000_000_000;
        for n in [next, next + 1] {
            let clash = dir.join(format!(
                "clash-{}-{}-{n}.jsonl",
                stamp / 1000,
                std::process::id()
            ));
            fs::write(&clash, "taken").expect("pre-create clash file");
        }
        let (id, path, _file) =
            create_unique_run_file(&dir, "clash", stamp).expect("must find a free id");
        // The global counter may be bumped concurrently by other tests, so
        // assert the invariants rather than the exact skip count: a fresh
        // file was claimed, and the taken ids were not truncated (the old
        // `File::create` path silently overwrote them).
        let counter: u64 = id
            .rsplit('-')
            .next()
            .and_then(|n| n.parse().ok())
            .expect("id ends in a counter");
        assert!(counter >= next + 2, "id {id} must skip the taken counters");
        assert!(path.exists());
        assert_eq!(fs::read_to_string(&path).expect("exists"), "");
        for n in [next, next + 1] {
            let clash = dir.join(format!(
                "clash-{}-{}-{n}.jsonl",
                stamp / 1000,
                std::process::id()
            ));
            assert_eq!(
                fs::read_to_string(&clash).expect("clash file still present"),
                "taken",
                "pre-existing artifact must not be truncated"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequential_runs_in_one_process_get_distinct_artifacts() {
        let dir = std::env::temp_dir().join(format!("dance_runseq_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        let stamp: u128 = 1_700_000_000_000;
        let (id_a, path_a, _fa) = create_unique_run_file(&dir, "seq", stamp).expect("first");
        // Same kind, same timestamp — previously only the counter separated
        // them; now the filesystem claim guarantees it.
        let (id_b, path_b, _fb) = create_unique_run_file(&dir, "seq", stamp).expect("second");
        assert_ne!(id_a, id_b);
        assert_ne!(path_a, path_b);
        assert!(path_a.exists() && path_b.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_dir_defaults_under_results() {
        if std::env::var("DANCE_RUN_DIR").is_err() {
            assert!(run_dir().ends_with("results/runs"));
        }
    }

    #[test]
    fn snapshot_json_is_parseable() {
        let doc = snapshot_json("unit", 1.25);
        let v = crate::json::parse(&doc).expect("snapshot json parses");
        assert_eq!(
            v.get("bench").and_then(crate::json::Json::as_str),
            Some("unit")
        );
        assert_eq!(
            v.get("total_wall_s").and_then(crate::json::Json::as_f64),
            Some(1.25)
        );
    }

    #[test]
    fn emit_guard_without_a_run_is_a_noop() {
        // No sink is open in this process at unit-test time; the emitter
        // must simply return (events only flow while a run log is active).
        emit_guard("watchdog.trip", "non-finite loss");
    }

    #[test]
    fn span_agg_and_hist_lines_parse() {
        let mut stats = span::SpanStats::default();
        stats.record(1_500_000);
        stats.record(2_500_000);
        let line = span_agg_line("x.y", &stats);
        let v = crate::json::parse(&line).expect("span_agg parses");
        assert_eq!(
            v.get("count").and_then(crate::json::Json::as_f64),
            Some(2.0)
        );

        let mut h = metrics::Histogram::new();
        h.observe(0.5);
        h.observe(2e7); // overflow bucket → null upper bound
        let line = hist_line("h", &h);
        let v = crate::json::parse(&line).expect("hist parses");
        assert_eq!(
            v.get("count").and_then(crate::json::Json::as_f64),
            Some(2.0)
        );
    }
}
