//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! All three families live in one global registry behind a mutex; update
//! volume is epoch- or node-scale (not per-element), so an uncontended lock
//! is far below the noise floor of the numeric work being measured. Names
//! are free-form dotted strings (`"tape.nodes"`, `"epoch.loss"`); the
//! registry is keyed by owned strings so dynamically composed names (e.g.
//! per-chosen-op counters) work too.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::runlog;

/// A fixed-bucket histogram over `f64` observations.
///
/// Buckets are defined by an ascending boundary list `b_0 < b_1 < …`:
/// observation `v` lands in the first bucket whose boundary satisfies
/// `v <= b_i`, or in the overflow bucket past the last boundary. The default
/// boundary ladder is log-spaced 1–2–5 across twelve decades (`1e-6` to
/// `1e6`), which covers loss values, millisecond timings and node counts
/// alike without per-site configuration.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A histogram with the default 1–2–5 log-spaced boundary ladder.
    pub fn new() -> Self {
        let mut bounds = Vec::with_capacity(37);
        for exp in -6..=5i32 {
            let decade = 10f64.powi(exp);
            for mult in [1.0, 2.0, 5.0] {
                bounds.push(mult * decade);
            }
        }
        bounds.push(1e6);
        Self::with_bounds(bounds)
    }

    /// A histogram with explicit ascending boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one boundary");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram boundaries must be strictly ascending"
        );
        let n = bounds.len() + 1;
        Self {
            bounds,
            counts: vec![0; n],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Index of the bucket an observation falls into.
    fn bucket_of(&self, v: f64) -> usize {
        self.bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len())
    }

    /// Records one observation. Non-finite values count toward `count` but
    /// are excluded from the buckets and extrema, so a stray NaN cannot
    /// poison the whole distribution.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        if !v.is_finite() {
            return;
        }
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = self.bucket_of(v);
        self.counts[idx] += 1;
    }

    /// The boundary list.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; the last is overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Mean of the finite observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let finite: u64 = self.counts.iter().sum();
        if finite == 0 {
            0.0
        } else {
            self.sum / finite as f64
        }
    }

    /// Approximate q-quantile (`0.0 ..= 1.0`): the upper boundary of the
    /// bucket containing the quantile, clamped into the observed range.
    pub fn quantile(&self, q: f64) -> f64 {
        let finite: u64 = self.counts.iter().sum();
        if finite == 0 {
            return 0.0;
        }
        let rank = ((q * finite as f64).ceil() as u64).clamp(1, finite);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = self.bounds.get(idx).copied().unwrap_or(self.max);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// The registry contents behind the global lock.
#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn lock_registry() -> MutexGuard<'static, Option<Registry>> {
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Adds `n` to the counter `name` (creating it at zero).
pub fn inc_counter(name: &str, n: u64) {
    if !crate::enabled() {
        return;
    }
    let mut guard = lock_registry();
    let reg = guard.get_or_insert_with(Registry::default);
    match reg.counters.get_mut(name) {
        Some(c) => *c += n,
        None => {
            reg.counters.insert(name.to_string(), n);
        }
    }
}

/// Sets the gauge `name` to `value` and streams a JSONL event when a run
/// log is active (gauges form the per-epoch time series of a run).
pub fn set_gauge(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    {
        let mut guard = lock_registry();
        let reg = guard.get_or_insert_with(Registry::default);
        reg.gauges.insert(name.to_string(), value);
    }
    runlog::emit_gauge(name, value);
}

/// Records one observation into the histogram `name` (default buckets).
pub fn observe(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let mut guard = lock_registry();
    let reg = guard.get_or_insert_with(Registry::default);
    match reg.histograms.get_mut(name) {
        Some(h) => h.observe(value),
        None => {
            let mut h = Histogram::new();
            h.observe(value);
            reg.histograms.insert(name.to_string(), h);
        }
    }
}

/// A point-in-time copy of the whole metrics registry.
#[derive(Debug, Default, Clone)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → last value.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram name → snapshot.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Copies the current registry contents.
pub fn snapshot() -> MetricsSnapshot {
    let guard = lock_registry();
    guard
        .as_ref()
        .map(|r| MetricsSnapshot {
            counters: r.counters.clone(),
            gauges: r.gauges.clone(),
            histograms: r.histograms.clone(),
        })
        .unwrap_or_default()
}

/// Clears every counter, gauge and histogram (new run starting).
pub fn reset() {
    *lock_registry() = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_respects_boundaries() {
        let mut h = Histogram::with_bounds(vec![1.0, 2.0, 5.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 100.0] {
            h.observe(v);
        }
        // v <= 1.0 → bucket 0; 1.0 < v <= 2.0 → bucket 1; ≤ 5.0 → 2; else 3.
        assert_eq!(h.counts(), &[2, 2, 2, 1]);
        assert_eq!(h.count, 7);
        assert!((h.min - 0.5).abs() < 1e-12);
        assert!((h.max - 100.0).abs() < 1e-12);
    }

    #[test]
    fn default_buckets_cover_many_decades() {
        let mut h = Histogram::new();
        for v in [1e-7, 1e-3, 0.5, 3.0, 40.0, 1e5, 1e7] {
            h.observe(v);
        }
        assert_eq!(h.count, 7);
        let total: u64 = h.counts().iter().sum();
        assert_eq!(total, 7, "every finite observation lands in some bucket");
        // The extremes go to the first and overflow buckets.
        assert_eq!(h.counts()[0], 1);
        assert_eq!(*h.counts().last().expect("histogram has buckets"), 1);
    }

    #[test]
    fn non_finite_observations_do_not_poison() {
        let mut h = Histogram::new();
        h.observe(1.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count, 3);
        assert!((h.mean() - 1.0).abs() < 1e-12);
        assert!((h.max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_monotone_and_in_range() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.observe(i as f64);
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        assert!((1.0..=100.0).contains(&p50));
        assert!((1.0..=100.0).contains(&p95));
        assert!(p95 >= 50.0, "p95 {p95} implausibly low");
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::with_bounds(vec![2.0, 1.0]);
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        if !crate::enabled() {
            return;
        }
        inc_counter("test.metrics.counter", 2);
        inc_counter("test.metrics.counter", 3);
        set_gauge("test.metrics.gauge", 1.5);
        set_gauge("test.metrics.gauge", 2.5);
        observe("test.metrics.hist", 0.1);
        let snap = snapshot();
        assert!(snap.counters["test.metrics.counter"] >= 5);
        assert!((snap.gauges["test.metrics.gauge"] - 2.5).abs() < 1e-12);
        assert!(snap.histograms["test.metrics.hist"].count >= 1);
    }
}
