//! # dance-telemetry
//!
//! Zero-dependency tracing, metrics and run-log subsystem for the DANCE
//! workspace. The north-star claim of the paper — and of this repo — is
//! *wall-clock*: replacing the hardware toolchain with differentiable
//! surrogates makes co-exploration orders of magnitude cheaper per step.
//! This crate is how that claim gets measured instead of asserted: every
//! later performance PR cites before/after numbers from the same artifact.
//!
//! Three layers, all behind one `DANCE_TELEMETRY=off` kill switch whose
//! disabled-mode overhead is a single branch on a cached atomic:
//!
//! 1. **Spans** ([`span!`] / [`hot_span!`]): RAII guards with thread-local
//!    nesting stacks, monotonic timing and per-name aggregation (count,
//!    total/mean/p50/p95 wall time). `span!` additionally streams one JSONL
//!    event per close when a run log is active; `hot_span!` only aggregates,
//!    so per-step and per-op instrumentation stays cheap.
//! 2. **Metrics** ([`counter!`], [`gauge!`], [`histogram!`]): a global
//!    registry of monotonic counters, last-value gauges, and fixed-bucket
//!    histograms (log-spaced 1–2–5 buckets by default).
//! 3. **Run logs** ([`runlog::RunGuard`]): one JSONL file per run under
//!    `results/runs/<run-id>.jsonl` streaming span/gauge events while the
//!    run is active, then dumping every aggregate (span stats, counters,
//!    gauges, histogram snapshots) plus a human-readable summary table on
//!    drop. `cargo run -p dance-telemetry -- summarize <run.jsonl>` re-reads
//!    any such artifact.
//!
//! ```
//! let _run = dance_telemetry::runlog::RunGuard::start("doc-example");
//! {
//!     let _span = dance_telemetry::span!("doc.phase");
//!     dance_telemetry::counter!("doc.items", 3);
//!     dance_telemetry::histogram!("doc.loss", 0.25);
//! }
//! // aggregates are dumped to the run file when `_run` drops.
//! ```

pub mod json;
pub mod metrics;
pub mod runlog;
pub mod span;
pub mod summarize;

use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state cache for the `DANCE_TELEMETRY` environment check:
/// 0 = not yet read, 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry is collected at all.
///
/// Reads the `DANCE_TELEMETRY` environment variable once and caches the
/// answer, so every later call — and therefore every disabled macro site —
/// costs one atomic load and a branch. Telemetry is on by default; the
/// values `off`, `0` and `false` disable it.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = !matches!(
                std::env::var("DANCE_TELEMETRY").as_deref(),
                Ok("off") | Ok("0") | Ok("false")
            );
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Times a closure under a span name (aggregation only, never streamed).
///
/// Shorthand for wrapping a value computation in a [`hot_span!`] without
/// restructuring the expression; when telemetry is disabled the closure runs
/// with no timing at all.
#[inline]
pub fn time<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    if !enabled() {
        return f();
    }
    let start = std::time::Instant::now();
    let out = f();
    span::record_duration(name, start.elapsed().as_nanos() as u64);
    out
}

/// Opens an RAII span: aggregated under its name *and* streamed as one JSONL
/// event (when a run log is active) on drop. Bind the guard to a named
/// variable — `let _guard = span!("search.epoch");` — so it lives to the end
/// of the scope; `let _ = span!(…)` drops it immediately and records nothing
/// useful (the `span-guard` source lint flags exactly that).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name, true)
    };
}

/// Opens an aggregation-only RAII span for hot paths (per step, per op, per
/// cost-model call): never streamed, so the only cost per close is one
/// clock read and one map update. Aggregates still land in the run file as
/// `span_agg` events when the run ends.
#[macro_export]
macro_rules! hot_span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name, false)
    };
}

/// Increments a monotonic counter (by 1, or by an explicit amount).
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::metrics::inc_counter($name, 1)
    };
    ($name:expr, $n:expr) => {
        $crate::metrics::inc_counter($name, $n)
    };
}

/// Sets a gauge to its latest value; streamed as a JSONL event when a run
/// log is active (gauges are the per-epoch time series of a run).
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        $crate::metrics::set_gauge($name, $value)
    };
}

/// Records one observation into a fixed-bucket histogram.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        $crate::metrics::observe($name, $value)
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_is_cached_and_stable() {
        // Whatever the environment says, two reads agree (the first read
        // latches the value).
        assert_eq!(super::enabled(), super::enabled());
    }

    #[test]
    fn time_returns_closure_value() {
        assert_eq!(super::time("test.time", || 41 + 1), 42);
    }
}
