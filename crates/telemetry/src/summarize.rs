//! Reading run-log artifacts back: the `summarize` CLI's engine.
//!
//! Parses a JSONL run file produced by [`crate::runlog`] into a
//! [`RunSummary`] and renders the aggregate table plus a top-N
//! slowest-streamed-spans view. Later performance PRs cite before/after
//! numbers from these artifacts, so the renderer is deliberately plain
//! text: stable to diff, trivial to grep.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::json::{parse, Json};

/// One `span_agg` row read back from a run file.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanAggRow {
    /// Span name.
    pub name: String,
    /// Closed-span count.
    pub count: u64,
    /// Total wall milliseconds.
    pub total_ms: f64,
    /// Mean milliseconds.
    pub mean_ms: f64,
    /// Approximate median milliseconds.
    pub p50_ms: f64,
    /// Approximate 95th-percentile milliseconds.
    pub p95_ms: f64,
}

/// One streamed `span` event read back from a run file.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name.
    pub name: String,
    /// Duration in milliseconds.
    pub ms: f64,
    /// Offset from run start in milliseconds.
    pub at_ms: f64,
    /// Nesting depth at open.
    pub depth: u64,
}

/// A `hist` snapshot read back from a run file.
#[derive(Debug, Clone, PartialEq)]
pub struct HistRow {
    /// Observation count.
    pub count: u64,
    /// Mean of finite observations.
    pub mean: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
}

/// Everything `summarize` extracts from one run artifact.
#[derive(Debug, Default, Clone)]
pub struct RunSummary {
    /// Run id from the `meta` event.
    pub run_id: String,
    /// Run kind from the `meta` event.
    pub kind: String,
    /// Total wall time from `run_end`, when present.
    pub total_ms: Option<f64>,
    /// Every distinct event kind seen (`meta`, `span`, `gauge`, …).
    pub event_kinds: BTreeSet<String>,
    /// Number of JSONL lines.
    pub lines: usize,
    /// `span_agg` rows in file order.
    pub span_aggs: Vec<SpanAggRow>,
    /// Streamed `span` events in file order.
    pub spans: Vec<SpanEvent>,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
    /// Last value seen per gauge.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots.
    pub hists: BTreeMap<String, HistRow>,
}

fn num(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn text(v: &Json, key: &str) -> String {
    v.get(key).and_then(Json::as_str).unwrap_or("").to_string()
}

/// Parses one run artifact.
///
/// # Errors
///
/// Returns an error when the file cannot be read or any line fails to parse
/// as a JSON object with a `t` kind field.
pub fn summarize_file(path: impl AsRef<Path>) -> io::Result<RunSummary> {
    let content = fs::read_to_string(&path)?;
    summarize_str(&content).map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
}

/// Parses run-log content (exposed separately for tests).
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn summarize_str(content: &str) -> Result<RunSummary, String> {
    let mut out = RunSummary::default();
    for (lineno, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = v
            .get("t")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing event kind `t`", lineno + 1))?
            .to_string();
        out.lines += 1;
        match kind.as_str() {
            "meta" => {
                out.run_id = text(&v, "run");
                out.kind = text(&v, "kind");
            }
            "span" => out.spans.push(SpanEvent {
                name: text(&v, "name"),
                ms: num(&v, "ms"),
                at_ms: num(&v, "at_ms"),
                depth: num(&v, "depth") as u64,
            }),
            "span_agg" => out.span_aggs.push(SpanAggRow {
                name: text(&v, "name"),
                count: num(&v, "count") as u64,
                total_ms: num(&v, "total_ms"),
                mean_ms: num(&v, "mean_ms"),
                p50_ms: num(&v, "p50_ms"),
                p95_ms: num(&v, "p95_ms"),
            }),
            "counter" => {
                out.counters
                    .insert(text(&v, "name"), num(&v, "value") as u64);
            }
            "gauge" => {
                out.gauges.insert(text(&v, "name"), num(&v, "value"));
            }
            "hist" => {
                out.hists.insert(
                    text(&v, "name"),
                    HistRow {
                        count: num(&v, "count") as u64,
                        mean: num(&v, "mean"),
                        p50: num(&v, "p50"),
                        p95: num(&v, "p95"),
                    },
                );
            }
            "run_end" => out.total_ms = Some(num(&v, "total_ms")),
            _ => {}
        }
        out.event_kinds.insert(kind);
    }
    Ok(out)
}

/// Renders the aggregate table and the top-N slowest streamed spans.
pub fn render(summary: &RunSummary, top_n: usize) -> String {
    let mut out = String::new();
    let _fmt: std::fmt::Result = writeln!(
        out,
        "run {} (kind: {}, {} events{})",
        if summary.run_id.is_empty() {
            "<unknown>"
        } else {
            &summary.run_id
        },
        if summary.kind.is_empty() {
            "<unknown>"
        } else {
            &summary.kind
        },
        summary.lines,
        summary
            .total_ms
            .map(|ms| format!(", total {ms:.1} ms"))
            .unwrap_or_default(),
    );

    if !summary.span_aggs.is_empty() {
        let _fmt: std::fmt::Result = writeln!(
            out,
            "\n{:<38} {:>9} {:>12} {:>10} {:>10} {:>10}",
            "span", "count", "total_ms", "mean_ms", "p50_ms", "p95_ms"
        );
        let mut rows = summary.span_aggs.clone();
        rows.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms));
        for r in &rows {
            let _fmt: std::fmt::Result = writeln!(
                out,
                "{:<38} {:>9} {:>12.3} {:>10.4} {:>10.4} {:>10.4}",
                r.name, r.count, r.total_ms, r.mean_ms, r.p50_ms, r.p95_ms
            );
        }
    }

    if !summary.counters.is_empty() {
        out.push_str("\ncounters:\n");
        for (name, value) in &summary.counters {
            let _fmt: std::fmt::Result = writeln!(out, "  {name:<40} {value}");
        }
    }
    if !summary.gauges.is_empty() {
        out.push_str("\ngauges (last value):\n");
        for (name, value) in &summary.gauges {
            let _fmt: std::fmt::Result = writeln!(out, "  {name:<40} {value:.6}");
        }
    }
    if !summary.hists.is_empty() {
        out.push_str("\nhistograms:\n");
        for (name, h) in &summary.hists {
            let _fmt: std::fmt::Result = writeln!(
                out,
                "  {name:<40} n={} mean={:.4} p50={:.4} p95={:.4}",
                h.count, h.mean, h.p50, h.p95
            );
        }
    }

    if !summary.spans.is_empty() {
        let mut slowest = summary.spans.clone();
        slowest.sort_by(|a, b| b.ms.total_cmp(&a.ms));
        slowest.truncate(top_n);
        let _fmt: std::fmt::Result = writeln!(out, "\ntop {} slowest spans:", slowest.len());
        for s in &slowest {
            let _fmt: std::fmt::Result = writeln!(
                out,
                "  {:<38} {:>12.3} ms  (at {:.1} ms, depth {})",
                s.name, s.ms, s.at_ms, s.depth
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"t\":\"meta\",\"v\":1,\"run\":\"search-1-2-0\",\"kind\":\"search\",\"unix_ms\":0}\n",
        "{\"t\":\"span\",\"name\":\"search.epoch\",\"ms\":12.5,\"depth\":0,\"thread\":\"main\",\"at_ms\":13.0,\"seq\":1}\n",
        "{\"t\":\"span\",\"name\":\"search.epoch\",\"ms\":10.0,\"depth\":0,\"thread\":\"main\",\"at_ms\":25.0,\"seq\":2}\n",
        "{\"t\":\"gauge\",\"name\":\"search.lambda2\",\"value\":0.5,\"at_ms\":25.1,\"seq\":3}\n",
        "{\"t\":\"span_agg\",\"name\":\"autograd.backward\",\"count\":64,\"total_ms\":40.0,\"mean_ms\":0.625,\"p50_ms\":0.6,\"p95_ms\":0.9,\"min_ms\":0.1,\"max_ms\":1.0}\n",
        "{\"t\":\"counter\",\"name\":\"tape.nodes\",\"value\":4096}\n",
        "{\"t\":\"hist\",\"name\":\"epoch.loss\",\"count\":2,\"mean\":1.1,\"min\":1.0,\"max\":1.2,\"p50\":1.0,\"p95\":1.2,\"buckets\":[[2,2]]}\n",
        "{\"t\":\"run_end\",\"total_ms\":30.0,\"events\":3}\n",
    );

    #[test]
    fn parses_every_event_kind() {
        let s = summarize_str(SAMPLE).expect("sample parses");
        assert_eq!(s.run_id, "search-1-2-0");
        assert_eq!(s.kind, "search");
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.span_aggs.len(), 1);
        assert_eq!(s.counters["tape.nodes"], 4096);
        assert!((s.gauges["search.lambda2"] - 0.5).abs() < 1e-12);
        assert_eq!(s.hists["epoch.loss"].count, 2);
        assert_eq!(s.total_ms, Some(30.0));
        for kind in [
            "meta", "span", "gauge", "span_agg", "counter", "hist", "run_end",
        ] {
            assert!(s.event_kinds.contains(kind), "missing kind {kind}");
        }
    }

    #[test]
    fn render_contains_table_and_slowest_view() {
        let s = summarize_str(SAMPLE).expect("sample parses");
        let text = render(&s, 1);
        assert!(text.contains("autograd.backward"));
        assert!(text.contains("tape.nodes"));
        assert!(text.contains("top 1 slowest spans"));
        assert!(text.contains("search.epoch"));
    }

    #[test]
    fn malformed_line_is_an_error() {
        let err = summarize_str("{\"t\":\"meta\"}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "unexpected error: {err}");
    }

    #[test]
    fn missing_kind_is_an_error() {
        let err = summarize_str("{\"name\":\"x\"}\n").unwrap_err();
        assert!(
            err.contains("missing event kind"),
            "unexpected error: {err}"
        );
    }
}
