//! RAII spans with thread-local nesting and per-name aggregation.
//!
//! A [`SpanGuard`] measures the wall time between its creation and drop on a
//! monotonic clock. Every close folds the duration into a global
//! [`SpanStats`] aggregate keyed by span name (count, total, min, max, and a
//! log₂ duration histogram for p50/p95 estimates). Nesting depth is tracked
//! per thread, so concurrent threads never corrupt each other's stacks; the
//! aggregate map itself is a mutex whose critical section is a few adds.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::runlog;

/// Number of log₂ duration buckets (covers 1 ns … ~584 years).
const NUM_BUCKETS: usize = 64;

/// Aggregated timing statistics for one span name.
#[derive(Debug, Clone)]
pub struct SpanStats {
    /// Number of closed spans.
    pub count: u64,
    /// Total wall time in nanoseconds.
    pub total_ns: u64,
    /// Shortest observed span in nanoseconds.
    pub min_ns: u64,
    /// Longest observed span in nanoseconds.
    pub max_ns: u64,
    /// `buckets[i]` counts spans with `floor(log2(ns)) == i`.
    buckets: [u64; NUM_BUCKETS],
}

impl Default for SpanStats {
    fn default() -> Self {
        Self {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }
}

impl SpanStats {
    /// Folds one duration into the aggregate.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        let idx = 63 - ns.max(1).leading_zeros() as usize;
        self.buckets[idx.min(NUM_BUCKETS - 1)] += 1;
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.total_ns / self.count
        }
    }

    /// Approximate q-quantile (`0.0 ..= 1.0`) in nanoseconds, estimated as
    /// the geometric midpoint of the log₂ bucket containing the quantile,
    /// clamped into the observed `[min, max]` range.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Geometric midpoint of [2^idx, 2^(idx+1)): 2^idx * sqrt(2).
                let mid = (2f64.powi(idx as i32) * std::f64::consts::SQRT_2) as u64;
                return mid.clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }
}

/// One row of a span report: a name with its aggregate statistics.
#[derive(Debug, Clone)]
pub struct SpanAgg {
    /// Span name (as given to [`crate::span!`] / [`crate::hot_span!`]).
    pub name: String,
    /// The aggregated statistics.
    pub stats: SpanStats,
}

/// The global span aggregator. Keys are the `&'static str` names the macros
/// pass, so recording never allocates after a name's first appearance.
static AGGREGATOR: Mutex<Option<HashMap<&'static str, SpanStats>>> = Mutex::new(None);

fn lock_aggregator() -> MutexGuard<'static, Option<HashMap<&'static str, SpanStats>>> {
    // A poisoned telemetry mutex must never take down the workload; the
    // aggregates inside are plain counters and stay usable.
    AGGREGATOR.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Folds a measured duration into the global aggregate for `name`.
#[inline]
pub fn record_duration(name: &'static str, ns: u64) {
    if !crate::enabled() {
        return;
    }
    let mut guard = lock_aggregator();
    guard
        .get_or_insert_with(HashMap::new)
        .entry(name)
        .or_default()
        .record(ns);
}

/// Interned `prefix + key` span names, so callsites with dynamic name parts
/// (e.g. per-op backward timing keyed by the op registry) can record without
/// allocating per call. Each distinct pair leaks one string; the pair space
/// is bounded by the op registry, so the leak is a few hundred bytes total.
static INTERNED: Mutex<Option<HashMap<(&'static str, &'static str), &'static str>>> =
    Mutex::new(None);

/// Folds a duration into the aggregate named `prefix` + `key`, composing and
/// interning the name on its first appearance only.
pub fn record_duration_prefixed(prefix: &'static str, key: &'static str, ns: u64) {
    if !crate::enabled() {
        return;
    }
    let name: &'static str = {
        let mut guard = INTERNED.lock().unwrap_or_else(PoisonError::into_inner);
        let map = guard.get_or_insert_with(HashMap::new);
        match map.get(&(prefix, key)) {
            Some(n) => n,
            None => {
                let leaked: &'static str = Box::leak(format!("{prefix}{key}").into_boxed_str());
                map.insert((prefix, key), leaked);
                leaked
            }
        }
    };
    let mut guard = lock_aggregator();
    guard
        .get_or_insert_with(HashMap::new)
        .entry(name)
        .or_default()
        .record(ns);
}

/// Snapshot of every span aggregate, sorted by total time (descending).
pub fn span_report() -> Vec<SpanAgg> {
    let guard = lock_aggregator();
    let mut out: Vec<SpanAgg> = guard
        .as_ref()
        .map(|m| {
            m.iter()
                .map(|(name, stats)| SpanAgg {
                    name: (*name).to_string(),
                    stats: stats.clone(),
                })
                .collect()
        })
        .unwrap_or_default();
    // Tie-break by name: total_ns ties (e.g. two never-entered spans) must
    // not leak HashMap iteration order into the report.
    out.sort_by(|a, b| {
        b.stats
            .total_ns
            .cmp(&a.stats.total_ns)
            .then_with(|| a.name.cmp(&b.name))
    });
    out
}

/// Clears every span aggregate (called when a new run log starts so each
/// run file is self-contained).
pub fn reset() {
    *lock_aggregator() = None;
}

thread_local! {
    /// Per-thread nesting depth; spans on different threads never see each
    /// other.
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// An RAII span: created by [`crate::span!`] / [`crate::hot_span!`], records
/// its wall time on drop.
#[must_use = "bind the span guard to a named variable (`let _guard = span!(…)`); \
              dropping it immediately measures nothing"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    streamed: bool,
    depth: u32,
    active: bool,
}

impl SpanGuard {
    /// Opens a span. `streamed` spans additionally emit one JSONL event on
    /// close when a run log is active; non-streamed (hot) spans only
    /// aggregate. Returns an inert guard when telemetry is disabled.
    pub fn enter(name: &'static str, streamed: bool) -> Self {
        if !crate::enabled() {
            return Self {
                name,
                start: Instant::now(),
                streamed: false,
                depth: 0,
                active: false,
            };
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        Self {
            name,
            start: Instant::now(),
            streamed,
            depth,
            active: true,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let ns = self.start.elapsed().as_nanos() as u64;
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        record_duration(self.name, ns);
        if self.streamed {
            runlog::emit_span(self.name, ns, self.depth);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_aggregate_count_total_min_max() {
        let mut s = SpanStats::default();
        for ns in [100, 200, 300] {
            s.record(ns);
        }
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 600);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 300);
        assert_eq!(s.mean_ns(), 200);
    }

    #[test]
    fn quantiles_are_within_observed_range() {
        let mut s = SpanStats::default();
        for ns in [10, 20, 40, 80, 160, 320, 640, 1280, 2560, 5120] {
            s.record(ns);
        }
        let p50 = s.quantile_ns(0.5);
        let p95 = s.quantile_ns(0.95);
        assert!((10..=5120).contains(&p50), "p50 {p50} out of range");
        assert!((10..=5120).contains(&p95), "p95 {p95} out of range");
        assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
    }

    #[test]
    fn quantile_of_uniform_durations_is_that_duration() {
        let mut s = SpanStats::default();
        for _ in 0..100 {
            s.record(1000);
        }
        // All observations share one bucket; clamping pins the estimate.
        assert_eq!(s.quantile_ns(0.5), 1000);
        assert_eq!(s.quantile_ns(0.95), 1000);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = SpanStats::default();
        assert_eq!(s.mean_ns(), 0);
        assert_eq!(s.quantile_ns(0.5), 0);
    }

    #[test]
    fn zero_duration_lands_in_first_bucket() {
        let mut s = SpanStats::default();
        s.record(0);
        assert_eq!(s.count, 1);
        assert_eq!(s.quantile_ns(0.5), 0); // clamped into [min, max] = [0, 0]
    }

    #[test]
    fn prefixed_names_are_interned_and_aggregated() {
        if !crate::enabled() {
            return;
        }
        record_duration_prefixed("test.span.bwd.", "matmul", 500);
        record_duration_prefixed("test.span.bwd.", "matmul", 700);
        let report = span_report();
        let row = report
            .iter()
            .find(|a| a.name == "test.span.bwd.matmul")
            .expect("interned span name missing from the report");
        assert!(row.stats.count >= 2);
        assert!(row.stats.total_ns >= 1200);
    }

    #[test]
    fn guard_records_into_global_aggregator() {
        if !crate::enabled() {
            return; // nothing to assert when the env disables telemetry
        }
        {
            let _g = SpanGuard::enter("test.span.guard_records", false);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let report = span_report();
        let row = report
            .iter()
            .find(|a| a.name == "test.span.guard_records")
            .expect("span name missing from the report");
        assert!(row.stats.count >= 1);
        assert!(row.stats.total_ns >= 1_000_000, "slept ≥ 1 ms");
    }
}
