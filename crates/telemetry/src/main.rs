//! `dance-telemetry` CLI: render a run-log artifact as a report.
//!
//! Usage: `cargo run -p dance-telemetry -- summarize <run.jsonl> [--top N]`

use std::process::ExitCode;

use dance_telemetry::summarize;

const USAGE: &str = "usage: dance-telemetry summarize <run.jsonl> [--top N]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("summarize") => {}
        Some(other) => return Err(format!("unknown command `{other}`\n{USAGE}")),
        None => return Err(USAGE.to_string()),
    }
    let mut path: Option<&str> = None;
    let mut top_n = 10usize;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--top needs a value\n{USAGE}"))?;
                top_n = value
                    .parse()
                    .map_err(|e| format!("bad --top value `{value}`: {e}"))?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            file => {
                if path.replace(file).is_some() {
                    return Err(format!("more than one input file\n{USAGE}"));
                }
            }
        }
    }
    let path = path.ok_or_else(|| USAGE.to_string())?;
    let summary =
        summarize::summarize_file(path).map_err(|e| format!("failed to read `{path}`: {e}"))?;
    Ok(summarize::render(&summary, top_n))
}
