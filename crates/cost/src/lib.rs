#![warn(missing_docs)]

//! # dance-cost
//!
//! Analytical accelerator cost model — the Timeloop + Accelergy substitute
//! of the DANCE reproduction (Choi et al., DAC 2021).
//!
//! Given a [`dance_accel::layer::ConvLayer`] workload and an
//! [`dance_accel::config::AcceleratorConfig`], [`model::CostModel`] produces
//! the three hardware metrics of the paper (latency, energy, area) by
//! composing a dataflow-aware loop [`mapping`], an Accelergy-style per-access
//! [`energy`] model, and an [`area`] model. [`metrics`] provides the two
//! `CostHW` scalarizations of paper §3.5.
//!
//! ```
//! use dance_accel::prelude::*;
//! use dance_cost::prelude::*;
//!
//! let net = NetworkTemplate::cifar10()
//!     .instantiate(&[SlotChoice::MbConv { kernel: 3, expand: 6 }; 9]);
//! let cost = CostModel::new()
//!     .evaluate(&net, &AcceleratorConfig::default(), Detail::Totals)
//!     .total;
//! assert!(cost.edap() > 0.0);
//! ```

pub mod area;
pub mod energy;
pub mod mapping;
pub mod metrics;
pub mod model;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::mapping::{map_layer, Mapping};
    pub use crate::metrics::{CostFunction, CostWeights};
    pub use crate::model::{CostModel, Detail, Evaluation, HardwareCost, LayerCost, CLOCK_GHZ};
}
