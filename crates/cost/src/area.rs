//! Silicon area model.
//!
//! Area grows with the PE array (each PE carries a MAC unit plus its register
//! file), the shared on-chip SRAM, and the network-on-chip wiring. Constants
//! are calibrated so the paper's space spans roughly 1–4 mm², matching the
//! EDAP magnitudes reported in Tables 2 and 4.

use dance_accel::config::AcceleratorConfig;

/// Area of one PE's arithmetic (MAC + control), in mm².
pub const PE_MM2: f64 = 0.002;
/// Area per register-file word, in mm².
pub const RF_WORD_MM2: f64 = 0.00005;
/// Area of the shared global SRAM buffer, in mm².
pub const SRAM_MM2: f64 = 0.8;
/// NoC wiring area per PE, in mm².
pub const NOC_PER_PE_MM2: f64 = 0.0004;

/// Total die area of a configuration, in mm².
pub fn area_mm2(config: &AcceleratorConfig) -> f64 {
    let pes = config.num_pes() as f64;
    pes * (PE_MM2 + RF_WORD_MM2 * config.rf_size() as f64) + SRAM_MM2 + NOC_PER_PE_MM2 * pes
}

#[cfg(test)]
mod tests {
    use super::*;
    use dance_accel::config::Dataflow;

    fn cfg(px: usize, py: usize, rf: usize) -> AcceleratorConfig {
        AcceleratorConfig::new(px, py, rf, Dataflow::RowStationary).unwrap()
    }

    #[test]
    fn area_grows_with_pes_and_rf() {
        assert!(area_mm2(&cfg(24, 24, 16)) > area_mm2(&cfg(8, 8, 16)));
        assert!(area_mm2(&cfg(16, 16, 64)) > area_mm2(&cfg(16, 16, 4)));
    }

    #[test]
    fn area_is_dataflow_independent() {
        for df in Dataflow::ALL {
            let c = AcceleratorConfig::new(12, 18, 32, df).unwrap();
            assert_eq!(area_mm2(&c), area_mm2(&cfg(12, 18, 32)));
        }
    }

    #[test]
    fn area_spans_paper_magnitude() {
        let lo = area_mm2(&cfg(8, 8, 4));
        let hi = area_mm2(&cfg(24, 24, 64));
        assert!(lo > 0.5 && lo < 2.0, "min area {lo}");
        assert!(hi > 2.0 && hi < 10.0, "max area {hi}");
    }
}
