//! Per-access energy model (the Accelergy substitute).
//!
//! Accelergy (Wu, Emer & Sze 2019) prices an accelerator by counting actions
//! (MACs, register/SRAM/DRAM accesses) and multiplying by per-action energy.
//! The constants below sit in the published technology range for a 65 nm
//! Eyeriss-class design and are scaled so a CIFAR-scale network lands in the
//! paper's single-digit-millijoule regime.

use dance_accel::config::AcceleratorConfig;

use crate::mapping::Mapping;

/// Energy per multiply-accumulate, in picojoules.
pub const MAC_PJ: f64 = 4.0;
/// Base energy per register-file word access, in picojoules.
pub const RF_BASE_PJ: f64 = 1.0;
/// Additional RF energy per word of RF capacity (bigger files cost more).
pub const RF_PER_WORD_PJ: f64 = 0.015;
/// Energy per on-chip SRAM word access, in picojoules.
pub const SRAM_PJ: f64 = 25.0;
/// Energy per DRAM word access, in picojoules.
pub const DRAM_PJ: f64 = 800.0;
/// Average register-file accesses per MAC (operand reads + psum update).
pub const RF_ACCESSES_PER_MAC: f64 = 3.0;
/// Static (leakage) power in picojoules per cycle per PE.
pub const LEAKAGE_PJ_PER_CYCLE_PER_PE: f64 = 0.02;

/// Energy of one RF access for a given register-file capacity, in pJ.
pub fn rf_access_pj(rf_words: usize) -> f64 {
    RF_BASE_PJ + RF_PER_WORD_PJ * rf_words as f64
}

/// Total energy of one mapped layer, in picojoules.
pub fn layer_energy_pj(macs: u64, mapping: &Mapping, config: &AcceleratorConfig) -> f64 {
    let _span = dance_telemetry::hot_span!("cost.energy.layer");
    let rf_pj = rf_access_pj(config.rf_size());
    let dynamic = macs as f64 * MAC_PJ
        + macs as f64 * RF_ACCESSES_PER_MAC * rf_pj
        + mapping.sram_total() as f64 * SRAM_PJ
        + mapping.dram_words as f64 * DRAM_PJ;
    let leakage =
        mapping.total_cycles as f64 * config.num_pes() as f64 * LEAKAGE_PJ_PER_CYCLE_PER_PE;
    dynamic + leakage
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::map_layer;
    use dance_accel::config::Dataflow;
    use dance_accel::layer::ConvLayer;

    fn cfg(rf: usize) -> AcceleratorConfig {
        AcceleratorConfig::new(16, 16, rf, Dataflow::RowStationary).unwrap()
    }

    #[test]
    fn rf_access_energy_grows_with_capacity() {
        assert!(rf_access_pj(64) > rf_access_pj(4));
    }

    #[test]
    fn energy_is_positive_and_finite() {
        let layer = ConvLayer::new(64, 32, 16, 16, 3, 3, 1);
        let c = cfg(16);
        let m = map_layer(&layer, &c);
        let e = layer_energy_pj(layer.macs(), &m, &c);
        assert!(e.is_finite() && e > 0.0);
    }

    #[test]
    fn more_macs_more_energy() {
        let small = ConvLayer::new(16, 16, 8, 8, 3, 3, 1);
        let big = ConvLayer::new(64, 64, 16, 16, 3, 3, 1);
        let c = cfg(16);
        let es = layer_energy_pj(small.macs(), &map_layer(&small, &c), &c);
        let eb = layer_energy_pj(big.macs(), &map_layer(&big, &c), &c);
        assert!(eb > es * 10.0);
    }

    #[test]
    fn rf_has_an_energy_sweet_spot_tradeoff() {
        // Bigger RF reduces SRAM traffic (good) but raises per-access RF
        // energy (bad) — both terms must actually move.
        let layer = ConvLayer::new(64, 32, 16, 16, 3, 3, 1);
        let small_cfg = cfg(4);
        let big_cfg = cfg(64);
        let m_small = map_layer(&layer, &small_cfg);
        let m_big = map_layer(&layer, &big_cfg);
        assert!(m_big.sram_total() < m_small.sram_total());
        let rf_term_small = layer.macs() as f64 * RF_ACCESSES_PER_MAC * rf_access_pj(4);
        let rf_term_big = layer.macs() as f64 * RF_ACCESSES_PER_MAC * rf_access_pj(64);
        assert!(rf_term_big > rf_term_small);
    }
}
