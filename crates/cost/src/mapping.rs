//! Dataflow-specific loop mapping: how a conv layer spreads over the PE
//! array, and how much memory traffic survives the register files.
//!
//! This module plays the role of Timeloop's mapper (Parashar et al. 2019):
//! for each dataflow it picks the spatial loops, derives PE-array
//! utilization, and computes per-datatype access counts at each level of the
//! memory hierarchy (RF → on-chip SRAM → DRAM). The formulas are analytical
//! approximations, but they reproduce the qualitative interactions the paper
//! relies on — e.g. weight-stationary arrays (TPU-like) lose utilization on
//! depthwise/separable layers because the channel dimensions they parallelize
//! over collapse to one (the paper's §1 TPU anecdote).

use dance_accel::config::{AcceleratorConfig, Dataflow};
use dance_accel::layer::ConvLayer;

/// On-chip global buffer capacity in words (Eyeriss-like 108 KiB).
pub const GLOBAL_BUFFER_WORDS: u64 = 110_592;
/// Words per cycle the DRAM interface sustains.
pub const DRAM_WORDS_PER_CYCLE: f64 = 16.0;
/// Pipeline fill/drain overhead added per layer, in cycles.
pub const FILL_DRAIN_CYCLES: u64 = 32;

/// The result of mapping one layer onto one accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mapping {
    /// Loop extent assigned to the X axis of the PE array.
    pub spatial_x: u64,
    /// Loop extent assigned to the Y axis of the PE array.
    pub spatial_y: u64,
    /// Average fraction of PEs doing useful work.
    pub utilization: f64,
    /// Cycles spent computing (assuming no memory stalls).
    pub compute_cycles: u64,
    /// SRAM accesses for weights / inputs / outputs, in words.
    pub sram_weight: u64,
    /// See [`Mapping::sram_weight`].
    pub sram_input: u64,
    /// See [`Mapping::sram_weight`].
    pub sram_output: u64,
    /// DRAM accesses in words (all datatypes).
    pub dram_words: u64,
    /// Cycles the array stalls waiting on memory.
    pub stall_cycles: u64,
    /// Total latency of this layer in cycles.
    pub total_cycles: u64,
}

impl Mapping {
    /// Total SRAM accesses across datatypes.
    pub fn sram_total(&self) -> u64 {
        self.sram_weight + self.sram_input + self.sram_output
    }
}

fn ceil_div(a: u64, b: u64) -> u64 {
    a.div_ceil(b.max(1))
}

/// Register-file partition: half for the stationary datatype, a quarter each
/// for the two streaming datatypes (minimum one word each).
fn rf_partition(rf: usize) -> (u64, u64, u64) {
    let rf = rf as u64;
    ((rf / 2).max(1), (rf / 4).max(1), (rf / 4).max(1))
}

/// Maps `layer` onto `config`, returning latency and traffic counts.
///
/// Timed per dataflow (`cost.map.ws` / `cost.map.os` / `cost.map.rs`) so run
/// logs show which mapper dominates a sweep.
pub fn map_layer(layer: &ConvLayer, config: &AcceleratorConfig) -> Mapping {
    if !dance_telemetry::enabled() {
        return map_layer_inner(layer, config);
    }
    let key = match config.dataflow() {
        Dataflow::WeightStationary => "ws",
        Dataflow::OutputStationary => "os",
        Dataflow::RowStationary => "rs",
    };
    // analyze:allow(determinism) span timing only; never feeds values
    let start = std::time::Instant::now();
    let mapping = map_layer_inner(layer, config);
    dance_telemetry::span::record_duration_prefixed(
        "cost.map.",
        key,
        start.elapsed().as_nanos() as u64,
    );
    mapping
}

fn map_layer_inner(layer: &ConvLayer, config: &AcceleratorConfig) -> Mapping {
    let px = config.pe_x() as u64;
    let py = config.pe_y() as u64;
    let (rf_st, rf_in, rf_out) = rf_partition(config.rf_size());

    let macs = layer.macs();
    let w_words = layer.weight_words();
    let i_words = layer.input_words();
    let o_words = layer.output_words();

    let k = layer.k as u64;
    let c_pg = layer.c_per_group() as u64;
    let ho = layer.h_out() as u64;
    let wo = layer.w_out() as u64;
    let r = layer.r as u64;
    let s = layer.s as u64;
    let stride = layer.stride as u64;

    // --- Spatial mapping and compute cycles ------------------------------
    // WS pins channels to the array axes rigidly (systolic, TPU-like).
    // OS and RS are more flexible mappers: spare array capacity folds the
    // output-channel loop spatially, the way Timeloop's mapper would.
    let (dx, dy, k_fold) = match config.dataflow() {
        // TPU-like: output channels across X, input channels across Y.
        Dataflow::WeightStationary => (k, c_pg, 1),
        // ShiDianNao-like: output pixels across the array; spare X lanes
        // replicate the map for several output channels.
        Dataflow::OutputStationary => {
            let kx = (px / wo).max(1).min(k);
            (wo * kx, ho, kx)
        }
        // Eyeriss-like: output rows across X, filter rows across Y; spare Y
        // lanes process several output channels' rows and spare X lanes fold
        // the input-channel loop.
        Dataflow::RowStationary => {
            let ky = (py / r).max(1).min(k);
            let cx = (px / ho).max(1).min(c_pg);
            (ho * cx, r * ky, ky)
        }
    };
    let tiles = ceil_div(dx, px) * ceil_div(dy, py);
    let temporal = (macs as f64 / (dx * dy) as f64).ceil() as u64;
    let compute_cycles = (tiles * temporal).max(1);
    let utilization = macs as f64 / (compute_cycles * px * py) as f64;

    // --- RF-filtered SRAM traffic ----------------------------------------
    // For each datatype: `macs / reuse`, floored at the compulsory traffic
    // (every word must be fetched at least once).
    let (sram_w, sram_i, sram_o) = match config.dataflow() {
        Dataflow::WeightStationary => {
            // Inputs broadcast along X to the K lanes; a larger RF lets each
            // PE keep weight slices for several output channels ("K
            // blocking"), multiplying input reuse, plus the S-wide sliding
            // window.
            let k_block = (rf_st / (r * s).max(1)).max(1).min(ceil_div(k, px));
            let reuse_i = (k.min(px) * k_block * rf_in.min(s).max(1)) as f64;
            // Weight/psum traffic depends on the loop order; the mapper (as
            // Timeloop would) picks the cheaper of:
            //  (a) pixels outer: weights fetched once per C-tile pass, but
            //      psums spill/reload once per input-channel tile;
            //  (b) channels inner over rf_out-sized pixel blocks: psums stay
            //      in the RF, but weights are re-fetched per pixel block.
            let refill = ceil_div(r * s, rf_st).min(ho * wo);
            let c_tiles = ceil_div(c_pg, py);
            let order_a_w = (w_words * refill) as f64;
            let order_a_o = (o_words * (2 * c_tiles - 1)) as f64;
            let pixel_blocks = ceil_div(ho * wo, rf_out);
            let order_b_w = (w_words * refill * pixel_blocks) as f64;
            let order_b_o = o_words as f64;
            let (sram_w, sram_o) = if order_a_w + order_a_o <= order_b_w + order_b_o {
                (order_a_w, order_a_o)
            } else {
                (order_b_w, order_b_o)
            };
            (sram_w, macs as f64 / reuse_i, sram_o)
        }
        Dataflow::OutputStationary => {
            // Outputs pinned: one psum per PE, written back once.
            let sram_o = o_words as f64;
            // Weights broadcast to every PE computing the same output
            // channel; the RF caches the filter window.
            let spatial_share = (wo.min(px) * ho.min(py)) as f64;
            let reuse_w = spatial_share * (rf_st.min(r * s).max(1) as f64);
            // Inputs shift systolically between neighbours (overlap shrinks
            // with stride), are shared by the K-folded lanes, and stay in the
            // RF across each PE's temporal output-channel loop.
            let overlap = ((r * s) / (stride * stride)).max(1);
            let k_per_pe = ceil_div(k, k_fold);
            let reuse_i =
                (k_fold * (rf_in * 2).min(overlap).max(1) * rf_in.min(k_per_pe).max(1)) as f64;
            (macs as f64 / reuse_w, macs as f64 / reuse_i, sram_o)
        }
        Dataflow::RowStationary => {
            // Filter rows (S words) pinned per PE, reused across the output
            // row and shared by the Ho lanes along X.
            let fit = (rf_st as f64 / s as f64).min(1.0);
            let reuse_w = (1.0 + ((wo - 1) as f64) * fit) * (ho.min(px) as f64);
            // Input rows travel diagonally: shared by min(R, PY) PEs and the
            // K-folded lanes, reused across the S-wide RF window.
            let reuse_i = (r.min(py) * k_fold * rf_in.min(s).max(1)) as f64;
            // Psums reduced along Y over the R lanes and accumulated across
            // S in the RF; when the output RF slice can hold a whole output
            // row (Wo words), the row also stays put across the
            // input-channel loop instead of spilling to SRAM per channel.
            // Channel-folded lanes still need their partials reduced through
            // the NoC, so the fold does not add psum reuse.
            let row_fit = (rf_out as f64 / wo as f64).min(1.0);
            let c_block = (row_fit * c_pg as f64).max(1.0);
            let reuse_o = (r.min(py) * rf_out.min(s).max(1)) as f64 * c_block;
            (
                macs as f64 / reuse_w,
                macs as f64 / reuse_i,
                2.0 * macs as f64 / reuse_o,
            )
        }
    };
    let sram_weight = (sram_w.ceil() as u64).max(w_words);
    let sram_input = (sram_i.ceil() as u64).max(i_words);
    let sram_output = (sram_o.ceil() as u64).max(o_words);

    // --- DRAM traffic ------------------------------------------------------
    // If the layer's working set fits the global buffer each tensor moves
    // once; otherwise the largest tensor is re-fetched per buffer pass.
    let working = w_words + i_words + o_words;
    let compulsory = working;
    let dram_words = if working <= GLOBAL_BUFFER_WORDS {
        compulsory
    } else {
        // The largest tensor is re-streamed in proportion to how far the
        // working set overflows the buffer (fractional, to avoid a cliff at
        // the capacity boundary).
        let overflow = working as f64 / GLOBAL_BUFFER_WORDS as f64 - 1.0;
        let largest = w_words.max(i_words).max(o_words) as f64;
        compulsory + (overflow * largest) as u64
    };

    // --- Stalls -------------------------------------------------------------
    // The NoC delivers (PX + PY) words per cycle from SRAM; DRAM is a fixed
    // channel. Compute and memory overlap, so latency is the maximum.
    let sram_cycles = ((sram_weight + sram_input + sram_output) as f64 / (px + py) as f64) as u64;
    let dram_cycles = (dram_words as f64 / DRAM_WORDS_PER_CYCLE) as u64;
    let bound = compute_cycles.max(sram_cycles).max(dram_cycles);
    let stall_cycles = bound - compute_cycles;
    let total_cycles = bound + FILL_DRAIN_CYCLES + px + py;

    Mapping {
        spatial_x: dx,
        spatial_y: dy,
        utilization,
        compute_cycles,
        sram_weight,
        sram_input,
        sram_output,
        dram_words,
        stall_cycles,
        total_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dance_accel::config::Dataflow::*;

    fn cfg(px: usize, py: usize, rf: usize, df: Dataflow) -> AcceleratorConfig {
        AcceleratorConfig::new(px, py, rf, df).unwrap()
    }

    #[test]
    fn more_pes_never_slower() {
        let layer = ConvLayer::new(64, 32, 16, 16, 3, 3, 1);
        for df in Dataflow::ALL {
            let small = map_layer(&layer, &cfg(8, 8, 16, df));
            let large = map_layer(&layer, &cfg(24, 24, 16, df));
            assert!(
                large.total_cycles <= small.total_cycles,
                "{df}: {} vs {}",
                large.total_cycles,
                small.total_cycles
            );
        }
    }

    #[test]
    fn bigger_rf_never_more_sram_traffic() {
        let layer = ConvLayer::new(64, 32, 16, 16, 3, 3, 1);
        for df in Dataflow::ALL {
            let small = map_layer(&layer, &cfg(16, 16, 4, df));
            let large = map_layer(&layer, &cfg(16, 16, 64, df));
            assert!(
                large.sram_total() <= small.sram_total(),
                "{df}: {} vs {}",
                large.sram_total(),
                small.sram_total()
            );
        }
    }

    #[test]
    fn weight_stationary_suffers_on_depthwise() {
        // The paper's TPU/separable-conv anecdote: WS parallelizes channels,
        // so a depthwise layer (C_per_group = 1) wastes the Y axis.
        let dw = ConvLayer::depthwise(64, 16, 16, 3, 3, 1);
        let ws = map_layer(&dw, &cfg(16, 16, 16, WeightStationary));
        let os = map_layer(&dw, &cfg(16, 16, 16, OutputStationary));
        assert!(
            ws.utilization < os.utilization / 2.0,
            "WS util {} vs OS util {}",
            ws.utilization,
            os.utilization
        );
        assert!(ws.total_cycles > os.total_cycles);
    }

    #[test]
    fn weight_stationary_wins_on_channel_heavy_pointwise() {
        let pw = ConvLayer::pointwise(256, 256, 4, 4);
        let ws = map_layer(&pw, &cfg(16, 16, 16, WeightStationary));
        let os = map_layer(&pw, &cfg(16, 16, 16, OutputStationary));
        // OS only has 4×4 = 16 output pixels to spread over 256 PEs.
        assert!(ws.compute_cycles < os.compute_cycles);
    }

    #[test]
    fn utilization_is_a_fraction() {
        let layer = ConvLayer::new(100, 30, 17, 23, 5, 5, 2);
        for df in Dataflow::ALL {
            for rf in [4, 64] {
                let m = map_layer(&layer, &cfg(13, 19, rf, df));
                assert!(
                    m.utilization > 0.0 && m.utilization <= 1.0 + 1e-9,
                    "{}",
                    m.utilization
                );
            }
        }
    }

    #[test]
    fn sram_traffic_at_least_compulsory() {
        let layer = ConvLayer::new(64, 32, 16, 16, 3, 3, 1);
        for df in Dataflow::ALL {
            let m = map_layer(&layer, &cfg(24, 24, 64, df));
            assert!(m.sram_weight >= layer.weight_words());
            assert!(m.sram_input >= layer.input_words());
            assert!(m.sram_output >= layer.output_words());
        }
    }

    #[test]
    fn dram_refetch_kicks_in_for_large_layers() {
        let small = ConvLayer::new(16, 16, 8, 8, 3, 3, 1);
        let huge = ConvLayer::new(512, 512, 64, 64, 3, 3, 1);
        let c = cfg(16, 16, 16, RowStationary);
        let ms = map_layer(&small, &c);
        let mh = map_layer(&huge, &c);
        assert_eq!(
            ms.dram_words,
            small.weight_words() + small.input_words() + small.output_words()
        );
        assert!(mh.dram_words > huge.weight_words() + huge.input_words() + huge.output_words());
    }

    #[test]
    fn total_cycles_include_fill_drain() {
        let layer = ConvLayer::new(8, 8, 4, 4, 1, 1, 1);
        let m = map_layer(&layer, &cfg(8, 8, 16, WeightStationary));
        assert!(m.total_cycles >= m.compute_cycles + FILL_DRAIN_CYCLES);
    }

    #[test]
    fn mapping_is_deterministic() {
        let layer = ConvLayer::new(64, 32, 16, 16, 3, 3, 1);
        let c = cfg(12, 20, 32, RowStationary);
        assert_eq!(map_layer(&layer, &c), map_layer(&layer, &c));
    }
}
