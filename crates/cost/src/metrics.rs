//! Hardware cost functions (paper §3.5).
//!
//! Two `CostHW` definitions drive the search: a weighted linear combination
//! of the three metrics (Eq. 3), and the hyper-parameter-free energy–delay–
//! area product (Eq. 4).

use std::fmt;

use crate::model::HardwareCost;

/// Weights of the linear cost function `λ_E·E + λ_L·L + λ_A·A` (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Latency weight `λ_L`.
    pub lambda_l: f64,
    /// Energy weight `λ_E`.
    pub lambda_e: f64,
    /// Area weight `λ_A`.
    pub lambda_a: f64,
}

impl CostWeights {
    /// The weights used in Table 2: `λ_L = 4.1, λ_E = 4.8, λ_A = 1.0`.
    pub fn table2() -> Self {
        Self {
            lambda_l: 4.1,
            lambda_e: 4.8,
            lambda_a: 1.0,
        }
    }
}

impl Default for CostWeights {
    fn default() -> Self {
        Self::table2()
    }
}

/// A scalar hardware cost function over the three metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostFunction {
    /// Weighted linear combination (Eq. 3).
    Linear(CostWeights),
    /// Energy–delay–area product (Eq. 4) — unitless and hyper-parameter
    /// free.
    Edap,
}

impl CostFunction {
    /// Evaluates the cost function on a set of metrics.
    pub fn apply(&self, cost: &HardwareCost) -> f64 {
        match self {
            CostFunction::Linear(w) => {
                w.lambda_l * cost.latency_ms
                    + w.lambda_e * cost.energy_mj
                    + w.lambda_a * cost.area_mm2
            }
            CostFunction::Edap => cost.edap(),
        }
    }

    /// Evaluates the cost function on raw `[latency, energy, area]` values
    /// (used on differentiable evaluator outputs, mirroring [`Self::apply`]).
    pub fn apply_array(&self, metrics: [f64; 3]) -> f64 {
        self.apply(&HardwareCost::from_array(metrics))
    }
}

impl fmt::Display for CostFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostFunction::Linear(w) => write!(
                f,
                "linear(λL={}, λE={}, λA={})",
                w.lambda_l, w.lambda_e, w.lambda_a
            ),
            CostFunction::Edap => f.write_str("EDAP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_combination_matches_eq3() {
        let c = HardwareCost {
            latency_ms: 2.0,
            energy_mj: 1.0,
            area_mm2: 3.0,
        };
        let f = CostFunction::Linear(CostWeights {
            lambda_l: 4.1,
            lambda_e: 4.8,
            lambda_a: 1.0,
        });
        assert!((f.apply(&c) - (4.1 * 2.0 + 4.8 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn edap_matches_eq4() {
        let c = HardwareCost {
            latency_ms: 2.0,
            energy_mj: 5.0,
            area_mm2: 3.0,
        };
        assert!((CostFunction::Edap.apply(&c) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn apply_array_equals_apply() {
        let c = HardwareCost {
            latency_ms: 1.5,
            energy_mj: 2.5,
            area_mm2: 0.5,
        };
        for f in [
            CostFunction::Edap,
            CostFunction::Linear(CostWeights::table2()),
        ] {
            assert_eq!(f.apply(&c), f.apply_array(c.to_array()));
        }
    }

    #[test]
    fn displays_are_informative() {
        assert_eq!(CostFunction::Edap.to_string(), "EDAP");
        assert!(CostFunction::Linear(CostWeights::table2())
            .to_string()
            .contains("λL=4.1"));
    }
}
