//! The end-to-end cost model façade: network × accelerator → cost metrics.
//!
//! This is the "(non-differentiable) cost estimation tool" of paper §3.3 —
//! the ground-truth oracle the evaluator network is trained to imitate.

use dance_accel::config::AcceleratorConfig;
use dance_accel::layer::ConvLayer;
use dance_accel::workload::Network;

use crate::area::area_mm2;
use crate::energy::layer_energy_pj;
use crate::mapping::{map_layer, Mapping};

/// Accelerator clock frequency in GHz (200 MHz, Eyeriss-class).
pub const CLOCK_GHZ: f64 = 0.2;

/// The three hardware cost metrics of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HardwareCost {
    /// End-to-end inference latency, in milliseconds.
    pub latency_ms: f64,
    /// Inference energy, in millijoules.
    pub energy_mj: f64,
    /// Die area, in mm².
    pub area_mm2: f64,
}

impl HardwareCost {
    /// Energy–delay–area product, in the paper's `J · s · m² · 10⁻¹²` units
    /// (numerically `energy_mj · latency_ms · area_mm2`).
    pub fn edap(&self) -> f64 {
        self.energy_mj * self.latency_ms * self.area_mm2
    }

    /// The metrics as a `[latency, energy, area]` array (the evaluator
    /// network's output order).
    pub fn to_array(&self) -> [f64; 3] {
        [self.latency_ms, self.energy_mj, self.area_mm2]
    }

    /// Builds the cost from a `[latency, energy, area]` array.
    pub fn from_array(a: [f64; 3]) -> Self {
        Self {
            latency_ms: a[0],
            energy_mj: a[1],
            area_mm2: a[2],
        }
    }
}

/// Per-layer evaluation detail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerCost {
    /// The mapping chosen for the layer.
    pub mapping: Mapping,
    /// Layer latency in cycles.
    pub cycles: u64,
    /// Layer energy in picojoules.
    pub energy_pj: f64,
}

/// How much detail [`CostModel::evaluate`] computes and returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detail {
    /// Whole-network totals only — the common, allocation-free case.
    Totals,
    /// Totals plus the per-layer mapping/cost breakdown.
    PerLayer,
}

/// Result of a [`CostModel::evaluate`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Whole-network cost totals.
    pub total: HardwareCost,
    /// Per-layer breakdown (one [`LayerCost`] per network layer, in order);
    /// `Some` exactly when [`Detail::PerLayer`] was requested.
    pub layers: Option<Vec<LayerCost>>,
}

/// The analytical cost model (Timeloop + Accelergy substitute).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostModel;

impl CostModel {
    /// Creates the model (stateless; provided for API symmetry).
    pub fn new() -> Self {
        Self
    }

    /// Prices a single layer on a configuration.
    pub fn evaluate_layer(&self, layer: &ConvLayer, config: &AcceleratorConfig) -> LayerCost {
        let _span = dance_telemetry::hot_span!("cost_model.evaluate_layer");
        let mapping = map_layer(layer, config);
        LayerCost {
            mapping,
            cycles: mapping.total_cycles,
            energy_pj: layer_energy_pj(layer.macs(), &mapping, config),
        }
    }

    /// Prices a whole network: latency and energy sum over layers, area is a
    /// property of the configuration alone.
    ///
    /// `detail` selects how much the call computes: [`Detail::Totals`] skips
    /// the per-layer allocation entirely; [`Detail::PerLayer`] additionally
    /// records one [`LayerCost`] per network layer, in order — the payload
    /// behind `cost/analytic` detail responses in `dance-serve`.
    pub fn evaluate(
        &self,
        network: &Network,
        config: &AcceleratorConfig,
        detail: Detail,
    ) -> Evaluation {
        let _span = dance_telemetry::hot_span!("cost_model.evaluate");
        dance_telemetry::counter!("cost_model.evaluations");
        let mut cycles = 0u64;
        let mut energy_pj = 0.0f64;
        let mut layers = match detail {
            Detail::Totals => None,
            Detail::PerLayer => Some(Vec::with_capacity(network.layers().len())),
        };
        for layer in network.layers() {
            let lc = self.evaluate_layer(layer, config);
            cycles += lc.cycles;
            energy_pj += lc.energy_pj;
            if let Some(v) = layers.as_mut() {
                v.push(lc);
            }
        }
        let total = HardwareCost {
            latency_ms: cycles as f64 / (CLOCK_GHZ * 1e9) * 1e3,
            energy_mj: energy_pj * 1e-12 * 1e3,
            area_mm2: area_mm2(config),
        };
        Evaluation { total, layers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dance_accel::config::Dataflow;
    use dance_accel::space::HardwareSpace;
    use dance_accel::workload::{NetworkTemplate, SlotChoice};

    fn cifar_net() -> Network {
        NetworkTemplate::cifar10().instantiate(
            &[SlotChoice::MbConv {
                kernel: 3,
                expand: 6,
            }; 9],
        )
    }

    #[test]
    fn cifar_cost_in_paper_ballpark() {
        let model = CostModel::new();
        let cfg = AcceleratorConfig::default();
        let cost = model.evaluate(&cifar_net(), &cfg, Detail::Totals).total;
        // Shape check against Table 2 magnitudes: ms-scale latency,
        // mJ-scale energy, few-mm² area.
        assert!(cost.latency_ms > 0.1 && cost.latency_ms < 100.0, "{cost:?}");
        assert!(cost.energy_mj > 0.1 && cost.energy_mj < 100.0, "{cost:?}");
        assert!(cost.area_mm2 > 0.5 && cost.area_mm2 < 10.0, "{cost:?}");
    }

    #[test]
    fn edap_is_product_of_metrics() {
        let c = HardwareCost {
            latency_ms: 2.0,
            energy_mj: 3.0,
            area_mm2: 4.0,
        };
        assert!((c.edap() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn network_cost_is_sum_of_layers_plus_area() {
        let model = CostModel::new();
        let cfg = AcceleratorConfig::default();
        let net = cifar_net();
        let total = model.evaluate(&net, &cfg, Detail::Totals).total;
        let cycles: u64 = net
            .layers()
            .iter()
            .map(|l| model.evaluate_layer(l, &cfg).cycles)
            .sum();
        assert!((total.latency_ms - cycles as f64 / 2e5).abs() < 1e-9);
    }

    #[test]
    fn per_layer_detail_sums_to_totals() {
        let model = CostModel::new();
        let cfg = AcceleratorConfig::default();
        let net = cifar_net();
        let e = model.evaluate(&net, &cfg, Detail::PerLayer);
        let layers = e.layers.clone().unwrap_or_default();
        assert_eq!(layers.len(), net.layers().len());
        let cycles: u64 = layers.iter().map(|l| l.cycles).sum();
        assert!((e.total.latency_ms - cycles as f64 / 2e5).abs() < 1e-9);
        let totals_only = model.evaluate(&net, &cfg, Detail::Totals);
        assert!(totals_only.layers.is_none());
        assert_eq!(totals_only.total, e.total);
    }

    #[test]
    fn best_dataflow_depends_on_network_shape() {
        // A channel-heavy pointwise-only network prefers WS; a spatially
        // large shallow network prefers OS — the non-linearity the paper's
        // evaluator must learn.
        let model = CostModel::new();
        let mk = |df| AcceleratorConfig::new(16, 16, 16, df).unwrap();
        let channel_heavy = Network::from_layers(vec![ConvLayer::pointwise(512, 512, 4, 4)]);
        let spatial_heavy = Network::from_layers(vec![ConvLayer::new(8, 8, 64, 64, 3, 3, 1)]);
        let ws_ch = model
            .evaluate(
                &channel_heavy,
                &mk(Dataflow::WeightStationary),
                Detail::Totals,
            )
            .total
            .latency_ms;
        let os_ch = model
            .evaluate(
                &channel_heavy,
                &mk(Dataflow::OutputStationary),
                Detail::Totals,
            )
            .total
            .latency_ms;
        let ws_sp = model
            .evaluate(
                &spatial_heavy,
                &mk(Dataflow::WeightStationary),
                Detail::Totals,
            )
            .total
            .latency_ms;
        let os_sp = model
            .evaluate(
                &spatial_heavy,
                &mk(Dataflow::OutputStationary),
                Detail::Totals,
            )
            .total
            .latency_ms;
        assert!(ws_ch < os_ch, "channel-heavy: WS {ws_ch} OS {os_ch}");
        assert!(os_sp < ws_sp, "spatial-heavy: WS {ws_sp} OS {os_sp}");
    }

    #[test]
    fn cost_varies_across_the_space() {
        // The space must be non-degenerate: different configs price the same
        // network differently (otherwise there is nothing to search).
        let model = CostModel::new();
        let net = cifar_net();
        let space = HardwareSpace::new();
        let costs: Vec<f64> = (0..space.len())
            .step_by(97)
            .map(|i| {
                model
                    .evaluate(&net, &space.config_at(i), Detail::Totals)
                    .total
                    .edap()
            })
            .collect();
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = costs.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 1.5, "EDAP spread too small: {min}..{max}");
    }

    #[test]
    fn zero_heavy_network_is_cheaper() {
        let model = CostModel::new();
        let cfg = AcceleratorConfig::default();
        let t = NetworkTemplate::cifar10();
        let zero = model
            .evaluate(&t.instantiate(&[SlotChoice::Zero; 9]), &cfg, Detail::Totals)
            .total;
        let heavy = model.evaluate(&t.max_network(), &cfg, Detail::Totals).total;
        assert!(zero.latency_ms < heavy.latency_ms);
        assert!(zero.energy_mj < heavy.energy_mj);
    }

    use dance_accel::layer::ConvLayer;
}
