pub use dance::*;
