//! Workspace facade: re-exports the `dance` core crate so integration tests
//! and downstream users can `use dance::…` from the workspace root.

pub use dance::*;
