//! `dance_search` — run (or resume) a guarded differentiable architecture
//! search from the command line.
//!
//! The binary runs the FLOPs-penalty search on the CIFAR-scale benchmark —
//! no evaluator training required, so it starts in seconds — with the full
//! dance-guard stack attached: numeric-health watchdog, periodic atomic
//! checkpoints and bit-for-bit resume.
//!
//! ```text
//! dance_search [--epochs N] [--batch-size N] [--seed N] [--lambda2 F]
//!              [--penalty none|flops] [--checkpoint-dir DIR] [--resume DIR]
//!              [--allow-graph-warnings]
//! ```
//!
//! With `--checkpoint-dir DIR`, every epoch ends with an atomic snapshot
//! under `DIR/epoch-NNNN.ckpt`. A killed run restarted with `--resume DIR`
//! (and otherwise identical flags) continues from the latest readable
//! checkpoint and reproduces the uninterrupted run's final architecture
//! parameters exactly; the `arch-digest` line makes that easy to diff.

use std::path::PathBuf;
use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dance::prelude::*;

struct Args {
    epochs: usize,
    batch_size: usize,
    seed: u64,
    lambda2: f32,
    flops_penalty: bool,
    checkpoint_dir: Option<PathBuf>,
    resume: Option<PathBuf>,
    allow_graph_warnings: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: dance_search [--epochs N] [--batch-size N] [--seed N] [--lambda2 F]\n\
         \x20                   [--penalty none|flops] [--checkpoint-dir DIR] [--resume DIR]\n\
         \x20                   [--allow-graph-warnings]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        epochs: 6,
        batch_size: 64,
        seed: 0,
        lambda2: 0.1,
        flops_penalty: true,
        checkpoint_dir: None,
        resume: None,
        allow_graph_warnings: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage();
            })
        };
        match flag.as_str() {
            "--epochs" => args.epochs = parse_num(&value("--epochs"), "--epochs"),
            "--batch-size" => args.batch_size = parse_num(&value("--batch-size"), "--batch-size"),
            "--seed" => args.seed = parse_num(&value("--seed"), "--seed"),
            "--lambda2" => args.lambda2 = parse_num(&value("--lambda2"), "--lambda2"),
            "--penalty" => match value("--penalty").as_str() {
                "none" => args.flops_penalty = false,
                "flops" => args.flops_penalty = true,
                other => {
                    eprintln!("unknown penalty {other:?} (expected none|flops)");
                    usage();
                }
            },
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(PathBuf::from(value("--checkpoint-dir")));
            }
            "--resume" => args.resume = Some(PathBuf::from(value("--resume"))),
            "--allow-graph-warnings" => args.allow_graph_warnings = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    args
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {s:?} for {flag}");
        usage();
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    let benchmark = Benchmark::cifar(args.seed);

    let cfg = SearchConfig::builder()
        .epochs(args.epochs)
        .batch_size(args.batch_size)
        .seed(args.seed)
        .lambda2(LambdaWarmup::constant(args.lambda2))
        .allow_graph_warnings(args.allow_graph_warnings)
        .build()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            usage();
        });

    let mut guard = GuardConfig::default();
    if let Some(dir) = args.checkpoint_dir {
        guard.checkpoint = Some(CheckpointConfig::every_epoch(dir));
    }
    guard.resume_from = args.resume;

    // The model is built from the seed-derived RNG exactly like the
    // pipeline does; on resume, every parameter is then overwritten from
    // the checkpoint, so only the shapes must match.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let supernet = Supernet::new(benchmark.supernet, &mut rng);
    let arch = ArchParams::new(supernet.num_slots(), &mut rng);
    let penalty = if args.flops_penalty {
        Penalty::Flops(&benchmark.template)
    } else {
        Penalty::None
    };
    let outcome = dance_search_guarded(&supernet, &arch, &benchmark.data, &penalty, &cfg, &guard);

    for stats in &outcome.history {
        println!(
            "epoch {:3}  ce {:.4}  entropy {:.4}  lambda2 {:.3}",
            stats.epoch, stats.train_ce, stats.arch_entropy, stats.lambda2
        );
    }
    let choices: Vec<String> = outcome.choices.iter().map(ToString::to_string).collect();
    println!("choices: {}", choices.join(" "));
    // Bit-exact fingerprint of the final architecture parameters, for
    // comparing a resumed run against an uninterrupted one.
    println!("arch-digest: {:016x}", outcome.digest());
    let g = &outcome.guard;
    println!(
        "guard: trips {} rollbacks {} degraded {} resumed {:?} checkpoints {}",
        g.watchdog_trips,
        g.rollbacks,
        g.cost_model_degraded,
        g.resumed_from_epoch,
        g.checkpoints_written
    );
    ExitCode::SUCCESS
}
