//! `serve_load` — closed-loop load generator for `dance_serve`.
//!
//! ```text
//! serve_load [--addr HOST:PORT] [--requests N] [--clients C]
//!            [--mix analytic|mixed] [--deadline-ms N] [--shutdown]
//!            [--connect-timeout-ms N] [--io-timeout-ms N] [--retries N]
//! ```
//!
//! Each client keeps one connection and fires requests back-to-back from a
//! fixed pool of distinct payloads (so the server's response cache sees a
//! realistic mix of cold and warm keys). Clients run on the shared
//! `dance-backend` worker pool, so effective concurrency is
//! `min(--clients, DANCE_THREADS)`. Runs under `dance-bench`, which writes
//! `BENCH_serve.json` at the workspace root with QPS, p50/p95/p99 latency
//! and the server-reported cache hit-rate. With `--shutdown` it finishes by
//! draining the server via `admin/shutdown`.

use std::sync::Arc;
use std::time::Instant;

use dance_bench::bench_run;
use dance_serve::client::{ClientConfig, RetryPolicy};
use dance_serve::proto::{ReqBody, Request, NUM_CHOICES, NUM_SLOTS};
use dance_serve::Client;
use dance_telemetry::json::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
struct LoadConfig {
    addr: String,
    requests: usize,
    clients: usize,
    mixed: bool,
    deadline_ms: u64,
    shutdown: bool,
    connect_timeout_ms: u64,
    io_timeout_ms: u64,
    retries: u32,
}

impl LoadConfig {
    fn client_config(&self) -> ClientConfig {
        ClientConfig::from_ms(self.connect_timeout_ms, self.io_timeout_ms)
    }

    /// Transport-only retries: `retry_on_503` stays off so shed requests
    /// are counted as sheds, not silently replayed into the queue they
    /// were just shed from.
    fn retry_policy(&self, thread: usize) -> RetryPolicy {
        RetryPolicy {
            attempts: self.retries.max(1),
            seed: thread as u64,
            retry_on_503: false,
            ..RetryPolicy::default()
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_load [--addr HOST:PORT] [--requests N] [--clients C] \
         [--mix analytic|mixed] [--deadline-ms N] [--shutdown] \
         [--connect-timeout-ms N] [--io-timeout-ms N] [--retries N]"
    );
    std::process::exit(2);
}

fn parse_args() -> LoadConfig {
    let mut cfg = LoadConfig {
        addr: "127.0.0.1:7421".into(),
        requests: 1000,
        clients: 8,
        mixed: true,
        deadline_ms: 250,
        shutdown: false,
        connect_timeout_ms: 5000,
        io_timeout_ms: 10_000,
        retries: 1,
    };
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        let mut next = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = next("--addr"),
            "--requests" => cfg.requests = next("--requests").parse().unwrap_or_else(|_| usage()),
            "--clients" => cfg.clients = next("--clients").parse().unwrap_or_else(|_| usage()),
            "--mix" => {
                cfg.mixed = match next("--mix").as_str() {
                    "analytic" => false,
                    "mixed" => true,
                    _ => usage(),
                }
            }
            "--deadline-ms" => {
                cfg.deadline_ms = next("--deadline-ms").parse().unwrap_or_else(|_| usage());
            }
            "--shutdown" => cfg.shutdown = true,
            "--connect-timeout-ms" => {
                cfg.connect_timeout_ms = next("--connect-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--io-timeout-ms" => {
                cfg.io_timeout_ms = next("--io-timeout-ms").parse().unwrap_or_else(|_| usage());
            }
            "--retries" => cfg.retries = next("--retries").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    cfg.clients = cfg.clients.clamp(1, 64);
    cfg.requests = cfg.requests.max(cfg.clients);
    cfg
}

/// Fixed pools of distinct payloads — small enough that the cache warms,
/// large enough that cold misses happen.
fn request_pool(cfg: &LoadConfig) -> Vec<ReqBody> {
    let mut rng = StdRng::seed_from_u64(42);
    let mut pool = Vec::with_capacity(320);
    for _ in 0..256 {
        let choices = (0..NUM_SLOTS)
            .map(|_| rng.gen_range(0..NUM_CHOICES as u32) as u8)
            .collect();
        pool.push(ReqBody::CostAnalytic {
            choices,
            cfg: rng.gen_range(0..4335u32) as usize,
            detail: false,
        });
    }
    if cfg.mixed {
        for _ in 0..48 {
            let arch = (0..NUM_SLOTS * NUM_CHOICES)
                .map(|_| rng.gen_range(0..1000u32) as f32 / 1000.0)
                .collect();
            pool.push(ReqBody::CostPredict { arch });
        }
        for _ in 0..16 {
            pool.push(ReqBody::Health);
        }
    }
    pool
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

#[derive(Debug, Default)]
struct ThreadStats {
    latencies_us: Vec<u64>,
    shed: u64,
    errors: u64,
}

fn client_loop(cfg: &LoadConfig, pool: &[ReqBody], thread: usize, count: usize) -> ThreadStats {
    let mut stats = ThreadStats::default();
    let mut client = match Client::connect_with(&cfg.addr, cfg.client_config()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("client {thread}: connect failed: {e}");
            stats.errors = count as u64;
            return stats;
        }
    };
    let policy = cfg.retry_policy(thread);
    let mut rng = StdRng::seed_from_u64(1000 + thread as u64);
    for i in 0..count {
        let body = pool[rng.gen_range(0..pool.len() as u32) as usize].clone();
        let req = Request {
            id: format!("{thread}-{i}"),
            deadline_ms: Some(cfg.deadline_ms),
            body,
        };
        let t0 = Instant::now();
        match client.call_retry(&req, &policy) {
            Ok(resp) => {
                let us = t0.elapsed().as_micros() as u64;
                match resp.get("ok") {
                    Some(Json::Bool(true)) => stats.latencies_us.push(us),
                    _ => {
                        if resp.get("code").and_then(Json::as_f64) == Some(503.0) {
                            stats.shed += 1;
                        } else {
                            stats.errors += 1;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("client {thread}: request failed: {e}");
                stats.errors += 1;
            }
        }
    }
    stats
}

/// Server-side cache hit-rate, read off the `health` endpoint.
fn fetch_hit_rate(cfg: &LoadConfig) -> f64 {
    let probe = Client::connect_with(&cfg.addr, cfg.client_config()).and_then(|mut c| {
        c.call(&Request {
            id: "health".into(),
            deadline_ms: None,
            body: ReqBody::Health,
        })
    });
    match probe {
        Ok(resp) => resp
            .get("cache")
            .and_then(|c| c.get("hit_rate"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        Err(e) => {
            eprintln!("health probe failed: {e}");
            0.0
        }
    }
}

fn run_load(cfg: &LoadConfig) {
    let per_client = cfg.requests / cfg.clients;
    let t0 = Instant::now();
    // One pool chunk per client; the shared backend pool supplies the
    // threads, so `DANCE_THREADS` caps how many clients fire concurrently.
    let pool = Arc::new(request_pool(cfg));
    let job_cfg = Arc::new(cfg.clone());
    let stats: Vec<ThreadStats> = dance_backend::run(cfg.clients, move |t| {
        client_loop(&job_cfg, &pool, t, per_client)
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.requests);
    let (mut shed, mut errors) = (0u64, 0u64);
    for s in &stats {
        latencies.extend_from_slice(&s.latencies_us);
        shed += s.shed;
        errors += s.errors;
    }
    latencies.sort_unstable();
    let ok = latencies.len() as u64;
    let qps = ok as f64 / wall_s.max(1e-9);
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    let hit_rate = fetch_hit_rate(cfg);
    dance_telemetry::gauge!("serve_load.qps", qps);
    dance_telemetry::gauge!("serve_load.p50_us", p50 as f64);
    dance_telemetry::gauge!("serve_load.p95_us", p95 as f64);
    dance_telemetry::gauge!("serve_load.p99_us", p99 as f64);
    dance_telemetry::gauge!("serve_load.ok", ok as f64);
    dance_telemetry::gauge!("serve_load.shed", shed as f64);
    dance_telemetry::gauge!("serve_load.errors", errors as f64);
    dance_telemetry::gauge!("serve_load.cache_hit_rate", hit_rate);
    println!(
        "serve_load: {ok} ok / {shed} shed / {errors} errors over {wall_s:.2}s \
         → {qps:.0} qps, p50 {p50}us p95 {p95}us p99 {p99}us, cache hit-rate {hit_rate:.2}"
    );
    if cfg.shutdown {
        match Client::connect_with(&cfg.addr, cfg.client_config()).and_then(|mut c| {
            c.call(&Request {
                id: "drain".into(),
                deadline_ms: None,
                body: ReqBody::Shutdown,
            })
        }) {
            Ok(_) => println!("shutdown requested; server draining"),
            Err(e) => eprintln!("shutdown request failed: {e}"),
        }
    }
}

fn main() {
    let cfg = parse_args();
    bench_run("serve", || run_load(&cfg));
}
