//! `dance_serve` — the protocol-v1 cost-query & search-job server.
//!
//! ```text
//! dance_serve [--addr HOST:PORT] [--workers N] [--cache-cap N]
//!             [--deadline-ms N] [--job-queue N]
//! ```
//!
//! Binds, prints `listening on <addr>` (scripts and `serve_load` parse
//! this line), then serves until an `admin/shutdown` request drains it.
//! The whole lifetime runs under one telemetry run log, so a clean drain
//! ends with a `run_end` record — the property the CI smoke asserts.

use dance_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: dance_serve [--addr HOST:PORT] [--workers N] [--cache-cap N] \
         [--deadline-ms N] [--job-queue N]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let Some(v) = args.next() else { usage() };
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value for {flag}: {v}");
        usage()
    })
}

fn main() {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7421".into(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = args.next().unwrap_or_else(|| usage()),
            "--workers" => {
                let n: usize = parse_num(&mut args, "--workers");
                // One knob for both execution pools: inline analytic
                // concurrency and the search-job worker count.
                cfg.max_inflight = n.max(1);
                cfg.search_workers = n.clamp(1, 4);
            }
            "--cache-cap" => cfg.cache_capacity = parse_num(&mut args, "--cache-cap"),
            "--deadline-ms" => cfg.default_deadline_ms = parse_num(&mut args, "--deadline-ms"),
            "--job-queue" => cfg.job_queue = parse_num(&mut args, "--job-queue"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    let run = dance_telemetry::runlog::RunGuard::start("serve");
    let server = match Server::bind(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {} failed: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        std::process::exit(1);
    }
    println!("drained cleanly");
    drop(run);
}
