//! `dance_campaign` — run (or resume) a co-search campaign from the
//! command line.
//!
//! A campaign fans seeded guarded searches out over a λ₂ × dataset ×
//! hardware-envelope grid and folds every per-epoch sample into one
//! incremental Pareto frontier. The manifest under `--dir` is saved
//! atomically after every folded sample, so a killed run restarted with
//! `--resume` (and otherwise identical flags) finishes the unfinished
//! cells and reproduces the uninterrupted run's `frontier-digest` line
//! bit-for-bit.
//!
//! ```text
//! dance_campaign [--lambda2 F,F,..] [--seeds N,N,..] [--envelopes full,edge]
//!                [--epochs N] [--batch N] [--seed N] [--dir DIR]
//!                [--max-concurrency N] [--resume] [--stream]
//!                [--attach HOST:PORT] [--connect-timeout-ms N] [--io-timeout-ms N]
//! ```
//!
//! With `--stream`, every `frontier_update` / `campaign_end` event is
//! printed to stdout as NDJSON while the campaign runs — the same lines
//! the `campaign/stream` serve endpoint delivers.
//!
//! With `--attach HOST:PORT`, the campaign is submitted to a running
//! `dance_serve` instead of executing locally, and its event stream is
//! followed over the wire with automatic re-attach: if the connection
//! drops or times out mid-stream, the client reconnects (bounded by the
//! connect/io timeout knobs) and replays from the last seen event offset,
//! so a server restart or network blip loses no events.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use dance_campaign::prelude::{
    run_campaign, CampaignSpec, CancelToken, Envelope, EventLog, Waited,
};
use dance_serve::client::{ClientConfig, RetryPolicy, StreamFollower};
use dance_serve::proto::{ReqBody, Request};
use dance_serve::Client;
use dance_telemetry::json::Json;

struct Args {
    spec: CampaignSpec,
    envelope_names: Vec<String>,
    resume: bool,
    stream: bool,
    attach: Option<String>,
    connect_timeout_ms: u64,
    io_timeout_ms: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: dance_campaign [--lambda2 F,F,..] [--seeds N,N,..] [--envelopes full,edge]\n\
         \x20                     [--epochs N] [--batch N] [--seed N] [--dir DIR]\n\
         \x20                     [--max-concurrency N] [--resume] [--stream]\n\
         \x20                     [--attach HOST:PORT] [--connect-timeout-ms N] [--io-timeout-ms N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut spec = CampaignSpec {
        name: "cli".into(),
        lambda2: vec![0.1, 0.3],
        dataset_seeds: vec![0],
        envelopes: vec![Envelope::full(), Envelope::edge()],
        epochs: 2,
        batch_size: 32,
        seed: 0,
        root: PathBuf::from("results/campaigns/cli"),
        max_concurrency: 0,
    };
    let mut envelope_names = vec!["full".to_string(), "edge".to_string()];
    let mut resume = false;
    let mut stream = false;
    let mut attach = None;
    let mut connect_timeout_ms = 5000u64;
    let mut io_timeout_ms = 10_000u64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage();
            })
        };
        match flag.as_str() {
            "--lambda2" => spec.lambda2 = parse_list(&value("--lambda2"), "--lambda2"),
            "--seeds" => spec.dataset_seeds = parse_list(&value("--seeds"), "--seeds"),
            "--envelopes" => {
                envelope_names = value("--envelopes")
                    .split(',')
                    .map(str::to_string)
                    .collect();
                spec.envelopes = envelope_names
                    .iter()
                    .map(|name| {
                        Envelope::by_name(name).unwrap_or_else(|| {
                            eprintln!("unknown envelope {name:?} (expected full|edge)");
                            usage();
                        })
                    })
                    .collect();
            }
            "--epochs" => spec.epochs = parse_num(&value("--epochs"), "--epochs"),
            "--batch" => spec.batch_size = parse_num(&value("--batch"), "--batch"),
            "--seed" => spec.seed = parse_num(&value("--seed"), "--seed"),
            "--dir" => spec.root = PathBuf::from(value("--dir")),
            "--max-concurrency" => {
                spec.max_concurrency = parse_num(&value("--max-concurrency"), "--max-concurrency");
            }
            "--resume" => resume = true,
            "--stream" => stream = true,
            "--attach" => attach = Some(value("--attach")),
            "--connect-timeout-ms" => {
                connect_timeout_ms =
                    parse_num(&value("--connect-timeout-ms"), "--connect-timeout-ms");
            }
            "--io-timeout-ms" => {
                io_timeout_ms = parse_num(&value("--io-timeout-ms"), "--io-timeout-ms");
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    Args {
        spec,
        envelope_names,
        resume,
        stream,
        attach,
        connect_timeout_ms,
        io_timeout_ms,
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {s:?} for {flag}");
        usage();
    })
}

fn parse_list<T: std::str::FromStr>(s: &str, flag: &str) -> Vec<T> {
    s.split(',')
        .map(|part| parse_num(part.trim(), flag))
        .collect()
}

/// Submits the campaign to a running `dance_serve` and follows its event
/// stream with automatic re-attach from the last seen offset.
fn run_attached(args: &Args, addr: &str) -> ExitCode {
    let cfg = ClientConfig::from_ms(args.connect_timeout_ms, args.io_timeout_ms);
    let mut client = match Client::connect_with(addr, cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Submission is NOT retried: campaign/submit is not idempotent, and a
    // blind retry after an ambiguous transport failure could start the
    // campaign twice.
    let submit = Request {
        id: "cli-submit".into(),
        deadline_ms: None,
        body: ReqBody::CampaignSubmit {
            lambda2: args.spec.lambda2.clone(),
            dataset_seeds: args.spec.dataset_seeds.clone(),
            envelopes: args.envelope_names.clone(),
            epochs: args.spec.epochs,
            batch: args.spec.batch_size,
            seed: args.spec.seed,
            max_concurrency: args.spec.max_concurrency,
        },
    };
    let campaign = match client.call(&submit) {
        Ok(resp) => match resp.get("campaign").and_then(Json::as_str) {
            Some(id) => id.to_string(),
            None => {
                let err = resp.get("err").and_then(Json::as_str).unwrap_or("rejected");
                eprintln!("campaign/submit failed: {err}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("campaign/submit failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("campaign {campaign} submitted to {addr}; streaming events");
    let policy = RetryPolicy::default();
    let mut follower = match StreamFollower::attach(client, &campaign, policy) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("campaign/stream failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    loop {
        match follower.next_event() {
            Ok(Some(line)) => println!("{line}"),
            Ok(None) => break,
            Err(e) => {
                eprintln!("stream lost beyond the re-attach budget: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Err(e) = args.spec.validate() {
        eprintln!("{e}");
        usage();
    }
    if let Some(addr) = &args.attach {
        return run_attached(&args, addr);
    }

    let log = Arc::new(EventLog::new());
    let cancel = Arc::new(CancelToken::new());
    let follower = if args.stream {
        let f_log = Arc::clone(&log);
        let handle = dance_backend::spawn_service("campaign-cli-stream", move || {
            let mut seq = 0usize;
            loop {
                match f_log.wait_next(seq, Duration::from_millis(100)) {
                    Waited::Line(line) => {
                        println!("{line}");
                        seq += 1;
                    }
                    Waited::Done => break,
                    Waited::TimedOut => {}
                }
            }
        });
        match handle {
            Ok(h) => Some(h),
            Err(e) => {
                eprintln!("cannot start stream follower: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let outcome = run_campaign(&args.spec, args.resume, &log, &cancel);
    if let Some(h) = follower {
        let _joined = h.join();
    }
    let out = match outcome {
        Ok(out) => out,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let c = out.frontier.counters();
    println!(
        "cells: {} done, {} failed ({})",
        out.cells_done,
        out.cells_failed,
        if out.cancelled {
            "cancelled; rerun with --resume to finish"
        } else {
            "complete"
        }
    );
    println!(
        "frontier: {} on front, {} archived, dedup hit-rate {:.3}",
        out.frontier.front_len(),
        out.frontier.archive_len(),
        c.dedup_hit_rate()
    );
    // Bit-exact fingerprint of the frontier archive, for comparing a
    // resumed campaign against an uninterrupted one.
    println!("frontier-digest: {:016x}", out.digest());
    ExitCode::SUCCESS
}
