//! `dance_fleet` — run a lease-supervised fleet of search worker
//! processes against a durable job ledger.
//!
//! ```text
//! dance_fleet [--seeds N,N,..] [--jobs N] [--epochs N] [--batch N]
//!             [--lambda2 F] [--workers N] [--dir DIR] [--lease-ttl-ms N]
//!             [--chaos-kill-ms N]
//! dance_fleet --worker <worker flags>      # internal: one job attempt
//! ```
//!
//! The supervisor submits one job per seed (idempotent — the job id is the
//! spec digest, so rerunning over the same `--dir` resumes the ledger
//! instead of duplicating jobs), dispatches to `--workers` child
//! processes, and reclaims expired leases. A reclaimed job's next attempt
//! resumes from the last durable checkpoint and reproduces the
//! uninterrupted run's digest bit-for-bit.
//!
//! `--chaos-kill-ms N` arms a one-shot chaos drill: `N` ms into the run
//! the supervisor SIGKILLs one busy worker. The run must still complete
//! every job with unchanged digests — that is the recovery contract, and
//! `scripts/check.sh` gates on it.
//!
//! Every finished job prints one greppable line, sorted by job id:
//!
//! ```text
//! job fjob-<id> arch-digest: <16 hex digits>
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use dance_fleet::prelude::{run_process_fleet, JobSpec, ProcessFleetConfig};

struct Args {
    cfg: ProcessFleetConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: dance_fleet [--seeds N,N,..] [--jobs N] [--epochs N] [--batch N]\n\
         \x20                  [--lambda2 F] [--workers N] [--dir DIR] [--lease-ttl-ms N]\n\
         \x20                  [--chaos-kill-ms N]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {s:?} for {flag}");
        usage();
    })
}

fn parse_args(argv: &[String]) -> Args {
    let mut seeds: Vec<u64> = Vec::new();
    let mut jobs = 0usize;
    let mut epochs = 3u64;
    let mut batch = 32u64;
    let mut lambda2 = 0.1f32;
    let mut dir = PathBuf::from("results/fleet/cli");
    let mut workers = 2usize;
    let mut lease_ttl_ms = 5000u64;
    let mut chaos_kill_ms = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage();
            })
        };
        match flag.as_str() {
            "--seeds" => {
                seeds = value("--seeds")
                    .split(',')
                    .map(|s| parse_num(s.trim(), "--seeds"))
                    .collect();
            }
            "--jobs" => jobs = parse_num(&value("--jobs"), "--jobs"),
            "--epochs" => epochs = parse_num(&value("--epochs"), "--epochs"),
            "--batch" => batch = parse_num(&value("--batch"), "--batch"),
            "--lambda2" => lambda2 = parse_num(&value("--lambda2"), "--lambda2"),
            "--workers" => workers = parse_num(&value("--workers"), "--workers"),
            "--dir" => dir = PathBuf::from(value("--dir")),
            "--lease-ttl-ms" => {
                lease_ttl_ms = parse_num(&value("--lease-ttl-ms"), "--lease-ttl-ms")
            }
            "--chaos-kill-ms" => {
                chaos_kill_ms = Some(parse_num(&value("--chaos-kill-ms"), "--chaos-kill-ms"));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    if seeds.is_empty() {
        let n = jobs.max(2);
        seeds = (0..n as u64).collect();
    }
    let specs: Vec<JobSpec> = seeds
        .iter()
        .map(|seed| JobSpec::new(epochs, batch, *seed, lambda2))
        .collect();
    let mut cfg = ProcessFleetConfig::new(dir, specs);
    cfg.workers = workers.clamp(1, 16);
    cfg.lease_ttl_ms = lease_ttl_ms;
    cfg.chaos_kill_after_ms = chaos_kill_ms;
    Args { cfg }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // Child-process entry: `dance_fleet --worker <flags>` runs exactly one
    // job attempt and reports over stdout NDJSON.
    if argv.first().map(String::as_str) == Some("--worker") {
        return ExitCode::from(dance_fleet::prelude::worker_main(&argv[1..]) as u8);
    }
    let args = parse_args(&argv);
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot locate own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match run_process_fleet(&exe, &args.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Sorted, greppable digest lines — the chaos-drill gate compares these
    // between a clean run and a kill-one-worker run.
    for (job, digest) in &report.digests {
        println!("job {job} arch-digest: {digest:016x}");
    }
    for (job, error) in &report.failures {
        println!("job {job} failed: {error}");
    }
    println!(
        "fleet: {} done, {} failed over {:.2}s ({} workers, {} reclaims, {} kills, {} fenced)",
        report.digests.len(),
        report.failures.len(),
        report.wall_ms as f64 / 1000.0,
        args.cfg.workers,
        report.reclaims,
        report.kills,
        report.fenced,
    );
    if let Some(p95) = report.recovery_p95_ms() {
        println!(
            "recovery: {} reclaim(s), p95 {p95}ms from lease expiry to re-dispatch",
            report.recoveries_ms.len()
        );
    }
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
