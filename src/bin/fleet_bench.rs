//! `fleet_bench` — chaos-drill benchmark for the process fleet; writes
//! `BENCH_fleet.json`.
//!
//! ```text
//! fleet_bench [--jobs N] [--epochs N] [--batch N] [--workers N] [--dir DIR]
//! fleet_bench --worker <worker flags>     # internal: one job attempt
//! ```
//!
//! Three phases over the same job set:
//!
//! 1. **clean** — the fleet runs undisturbed; jobs/hour baseline.
//! 2. **drill** — the same jobs in a fresh ledger, with one worker
//!    SIGKILLed mid-run; jobs/hour under failure plus the recovery p95
//!    (lease expiry → re-dispatch).
//! 3. **reference** — every job re-run single-worker, no chaos; the drill
//!    digests must match these bit-for-bit (`fleet.digest_match` gauge).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dance_bench::bench_run;
use dance_fleet::prelude::{run_process_fleet, JobSpec, ProcessFleetConfig, ProcessReport};

struct BenchArgs {
    jobs: usize,
    epochs: u64,
    batch: u64,
    workers: usize,
    dir: PathBuf,
}

fn usage() -> ! {
    eprintln!("usage: fleet_bench [--jobs N] [--epochs N] [--batch N] [--workers N] [--dir DIR]");
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {s:?} for {flag}");
        usage();
    })
}

fn parse_args(argv: &[String]) -> BenchArgs {
    let mut args = BenchArgs {
        jobs: 4,
        epochs: 3,
        batch: 32,
        workers: 2,
        dir: std::env::temp_dir().join("dance_fleet_bench"),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage();
            })
        };
        match flag.as_str() {
            "--jobs" => args.jobs = parse_num(&value("--jobs"), "--jobs"),
            "--epochs" => args.epochs = parse_num(&value("--epochs"), "--epochs"),
            "--batch" => args.batch = parse_num(&value("--batch"), "--batch"),
            "--workers" => args.workers = parse_num(&value("--workers"), "--workers"),
            "--dir" => args.dir = PathBuf::from(value("--dir")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    args.jobs = args.jobs.clamp(2, 64);
    args.workers = args.workers.clamp(1, 16);
    args
}

fn specs(args: &BenchArgs) -> Vec<JobSpec> {
    (0..args.jobs as u64)
        .map(|seed| JobSpec::new(args.epochs, args.batch, seed, 0.1))
        .collect()
}

fn run_phase(
    exe: &Path,
    args: &BenchArgs,
    phase: &str,
    workers: usize,
    chaos_kill_after_ms: Option<u64>,
) -> Option<ProcessReport> {
    let mut cfg = ProcessFleetConfig::new(args.dir.join(phase), specs(args));
    cfg.workers = workers;
    cfg.chaos_kill_after_ms = chaos_kill_after_ms;
    // Short leases so a killed worker's job is reclaimed quickly; epochs
    // (and therefore heartbeats) on the tiny benchmark run well under this.
    cfg.lease_ttl_ms = 2500;
    match run_process_fleet(exe, &cfg) {
        Ok(report) => {
            eprintln!(
                "{phase}: {} done, {} failed, {} reclaims in {:.2}s",
                report.digests.len(),
                report.failures.len(),
                report.reclaims,
                report.wall_ms as f64 / 1000.0
            );
            Some(report)
        }
        Err(e) => {
            eprintln!("{phase} phase failed: {e}");
            None
        }
    }
}

fn jobs_per_hour(report: &ProcessReport) -> f64 {
    report.digests.len() as f64 * 3_600_000.0 / (report.wall_ms.max(1) as f64)
}

fn run_bench(exe: &Path, args: &BenchArgs) {
    // Fresh ledgers per phase — this benchmark measures runs, not resumes.
    let _cleanup = std::fs::remove_dir_all(&args.dir);
    let Some(clean) = run_phase(exe, args, "clean", args.workers, None) else {
        return;
    };
    // Kill one worker roughly one third into the clean-run wall time: late
    // enough that checkpoints exist, early enough that recovery matters.
    let kill_at = (clean.wall_ms / 3).max(200);
    let Some(drill) = run_phase(exe, args, "drill", args.workers, Some(kill_at)) else {
        return;
    };
    let Some(reference) = run_phase(exe, args, "reference", 1, None) else {
        return;
    };
    let digests_match = drill.digests == reference.digests && drill.failures.is_empty();
    dance_telemetry::gauge!("fleet.jobs", args.jobs as f64);
    dance_telemetry::gauge!("fleet.workers", args.workers as f64);
    dance_telemetry::gauge!("fleet.jobs_per_hour_clean", jobs_per_hour(&clean));
    dance_telemetry::gauge!("fleet.jobs_per_hour_drill", jobs_per_hour(&drill));
    dance_telemetry::gauge!("fleet.kills", drill.kills as f64);
    dance_telemetry::gauge!("fleet.reclaims", drill.reclaims as f64);
    dance_telemetry::gauge!(
        "fleet.recovery_p95_ms",
        drill.recovery_p95_ms().unwrap_or(0) as f64
    );
    dance_telemetry::gauge!("fleet.digest_match", if digests_match { 1.0 } else { 0.0 });
    println!(
        "fleet_bench: clean {:.0} jobs/h, drill {:.0} jobs/h ({} kill(s), {} reclaim(s), \
         recovery p95 {}ms), digests {} the single-worker reference",
        jobs_per_hour(&clean),
        jobs_per_hour(&drill),
        drill.kills,
        drill.reclaims,
        drill.recovery_p95_ms().unwrap_or(0),
        if digests_match {
            "match"
        } else {
            "DIVERGE from"
        },
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("--worker") {
        return ExitCode::from(dance_fleet::prelude::worker_main(&argv[1..]) as u8);
    }
    let args = parse_args(&argv);
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot locate own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    bench_run("fleet", || run_bench(&exe, &args));
    ExitCode::SUCCESS
}
